//! Additional `/dev/poll` semantics: Solaris OR-compatibility, the
//! combined update+poll operation, per-socket locks, and edge cases.

use devpoll::{DevPollConfig, DevPollRegistry, DvPoll, PollFd, PollOutcome};
use simcore::time::{SimDuration, SimTime};
use simkernel::{CostModel, Errno, Fd, Kernel, Pid, PollBits};
use simnet::{EndpointId, HostId, LinkConfig, Network, SockAddr, TcpConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

struct World {
    net: Network,
    kernel: Kernel,
    registry: DevPollRegistry,
    pid: Pid,
    lfd: Fd,
}

fn pump(w: &mut World, horizon: SimTime) {
    while let Some(t) = w.net.next_deadline() {
        if t > horizon {
            break;
        }
        for n in w.net.advance(t) {
            w.kernel.on_net(t, &n);
        }
        for e in w.kernel.advance(t) {
            if let simkernel::KernelEvent::FdEvent { pid, fd, .. } = e {
                w.registry.on_fd_event(&mut w.kernel, t, pid, fd);
            }
        }
    }
}

fn world() -> World {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
    let pid = kernel.spawn_default();
    kernel.begin_batch(SimTime::ZERO, pid);
    let lfd = kernel
        .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
        .unwrap();
    kernel.end_batch(SimTime::ZERO, pid);
    World {
        net,
        kernel,
        registry: DevPollRegistry::new(),
        pid,
        lfd,
    }
}

fn connect_one(w: &mut World, at: SimTime) -> (Fd, EndpointId) {
    let conn = w
        .net
        .connect(at, CLIENT, SockAddr::new(SERVER, 80), SimDuration::ZERO)
        .unwrap();
    pump(w, at + SimDuration::from_millis(10));
    let t = at + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let fd = w.kernel.sys_accept(&mut w.net, t, w.pid, w.lfd).unwrap();
    w.kernel.end_batch(t, w.pid);
    (fd, EndpointId::new(conn, simnet::Side::Client))
}

#[test]
fn solaris_or_semantics_accumulate_interest() {
    let mut w = world();
    let (fd, ep) = connect_one(&mut w, SimTime::ZERO);
    let t = SimTime::from_millis(20);
    w.kernel.begin_batch(t, w.pid);
    let dpfd = w
        .registry
        .open(
            &mut w.kernel,
            t,
            w.pid,
            DevPollConfig {
                or_semantics: true,
                ..DevPollConfig::default()
            },
        )
        .unwrap();
    // Two writes: POLLIN then POLLOUT. Solaris ORs them together.
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLIN)],
        )
        .unwrap();
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLOUT)],
        )
        .unwrap();
    // The socket is writable (empty send buffer): POLLOUT must report
    // even though the *last* write only named POLLOUT... and once data
    // arrives POLLIN reports too, proving the OR.
    let (_, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(8, 0),
        )
        .unwrap();
    assert!(res[0].revents.contains(PollBits::POLLOUT));
    w.kernel.end_batch(t, w.pid);

    w.net.send(t, ep, b"in too").unwrap();
    pump(&mut w, t + SimDuration::from_millis(10));
    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (_, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(8, 0),
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    assert!(res[0].revents.contains(PollBits::POLLIN));
    assert!(res[0].revents.contains(PollBits::POLLOUT));
}

#[test]
fn linux_replace_semantics_drop_old_interest() {
    let mut w = world();
    let (fd, ep) = connect_one(&mut w, SimTime::ZERO);
    let t = SimTime::from_millis(20);
    w.kernel.begin_batch(t, w.pid);
    let dpfd = w
        .registry
        .open(&mut w.kernel, t, w.pid, DevPollConfig::default())
        .unwrap();
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLIN)],
        )
        .unwrap();
    // Replace with POLLOUT only.
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLOUT)],
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);

    w.net.send(t, ep, b"data").unwrap();
    pump(&mut w, t + SimDuration::from_millis(10));
    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (_, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(8, 0),
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    // POLLIN was replaced away: only POLLOUT may report.
    assert!(res[0].revents.contains(PollBits::POLLOUT));
    assert!(
        !res[0].revents.contains(PollBits::POLLIN),
        "POLLIN interest was replaced: {:?}",
        res[0]
    );
}

#[test]
fn combined_update_poll_charges_one_syscall_less() {
    let mut w = world();
    let (fd, _ep) = connect_one(&mut w, SimTime::ZERO);
    let t = SimTime::from_millis(20);
    let syscall = w.kernel.cost_model().syscall;

    w.kernel.begin_batch(t, w.pid);
    let dpfd = w
        .registry
        .open(&mut w.kernel, t, w.pid, DevPollConfig::default())
        .unwrap();
    w.kernel.end_batch(t, w.pid);

    let cost_of = |w: &mut World, combined: bool| -> u64 {
        w.kernel.begin_batch(t, w.pid);
        let upd = [PollFd::new(fd, PollBits::POLLIN)];
        if combined {
            w.registry
                .write_combined(&mut w.kernel, t, w.pid, dpfd, &upd)
                .unwrap();
        } else {
            w.registry
                .write(&mut w.kernel, t, w.pid, dpfd, &upd)
                .unwrap();
        }
        let _ = w
            .registry
            .dp_poll(
                &mut w.kernel,
                t,
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(8, 0),
            )
            .unwrap();
        let acc = w.kernel.process(w.pid).batch_acc.unwrap().as_nanos();
        w.kernel.end_batch(t, w.pid);
        acc
    };
    let separate = cost_of(&mut w, false);
    let combined = cost_of(&mut w, true);
    assert_eq!(separate - combined, syscall, "exactly one syscall saved");
}

#[test]
fn per_socket_locks_halve_lock_cost() {
    let mut w = world();
    let (fd, _ep) = connect_one(&mut w, SimTime::ZERO);
    let t = SimTime::from_millis(20);
    w.kernel.begin_batch(t, w.pid);
    let global = w
        .registry
        .open(&mut w.kernel, t, w.pid, DevPollConfig::default())
        .unwrap();
    let per_sock = w
        .registry
        .open(
            &mut w.kernel,
            t,
            w.pid,
            DevPollConfig {
                per_socket_locks: true,
                ..DevPollConfig::default()
            },
        )
        .unwrap();
    for dpfd in [global, per_sock] {
        w.registry
            .write(
                &mut w.kernel,
                t,
                w.pid,
                dpfd,
                &[PollFd::new(fd, PollBits::POLLIN)],
            )
            .unwrap();
    }
    let cost_of = |w: &mut World, dpfd: Fd| -> u64 {
        let before = w.kernel.process(w.pid).batch_acc.unwrap().as_nanos();
        let _ = w
            .registry
            .dp_poll(
                &mut w.kernel,
                t,
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(8, 0),
            )
            .unwrap();
        w.kernel.process(w.pid).batch_acc.unwrap().as_nanos() - before
    };
    let g = cost_of(&mut w, global);
    let p = cost_of(&mut w, per_sock);
    w.kernel.end_batch(t, w.pid);
    let rlock = w.kernel.cost_model().backmap_rlock;
    assert_eq!(g - p, rlock - rlock / 2, "read-lock traffic halves");
}

#[test]
fn zero_dp_nfds_returns_no_results() {
    let mut w = world();
    let (fd, ep) = connect_one(&mut w, SimTime::ZERO);
    let t = SimTime::from_millis(20);
    w.kernel.begin_batch(t, w.pid);
    let dpfd = w
        .registry
        .open(&mut w.kernel, t, w.pid, DevPollConfig::default())
        .unwrap();
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLIN)],
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    w.net.send(t, ep, b"x").unwrap();
    pump(&mut w, t + SimDuration::from_millis(10));
    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (out, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(0, 0),
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    assert_eq!(out, PollOutcome::Ready(0));
    assert!(res.is_empty());
}

#[test]
fn pollremove_of_unknown_fd_is_harmless() {
    let mut w = world();
    let t = SimTime::from_millis(1);
    w.kernel.begin_batch(t, w.pid);
    let dpfd = w
        .registry
        .open(&mut w.kernel, t, w.pid, DevPollConfig::default())
        .unwrap();
    let n = w
        .registry
        .write(&mut w.kernel, t, w.pid, dpfd, &[PollFd::remove(99)])
        .unwrap();
    assert_eq!(n, 1, "entry processed even though nothing matched");
    assert_eq!(
        w.registry
            .device(&w.kernel, w.pid, dpfd)
            .unwrap()
            .interest()
            .len(),
        0
    );
    w.kernel.end_batch(t, w.pid);
}

#[test]
fn open_fails_cleanly_when_fd_table_full() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
    let mut registry = DevPollRegistry::new();
    let pid = kernel.spawn(1, 16);
    kernel.begin_batch(SimTime::ZERO, pid);
    let _lfd = kernel
        .sys_listen(&mut net, SimTime::ZERO, pid, 80, 8)
        .unwrap();
    assert_eq!(
        registry
            .open(&mut kernel, SimTime::ZERO, pid, DevPollConfig::default())
            .unwrap_err(),
        Errno::EMFILE
    );
    kernel.end_batch(SimTime::ZERO, pid);
}

#[test]
fn devpoll_fd_itself_reports_no_readiness() {
    let mut w = world();
    let t = SimTime::from_millis(1);
    w.kernel.begin_batch(t, w.pid);
    let dpfd = w
        .registry
        .open(&mut w.kernel, t, w.pid, DevPollConfig::default())
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    assert!(w.kernel.readiness(w.pid, dpfd).is_empty());
}
