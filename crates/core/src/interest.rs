//! The kernel-resident interest-set hash table (§3.1).
//!
//! "A hash table contains each interest set within the kernel. On
//! average, hash tables provide fast lookup, insertion, and deletion.
//! For simplicity, when the average bucket size is two, the number of
//! buckets in the hash table is doubled. The hash table is never
//! shrunk."
//!
//! Storage here is a dense fd-indexed slot array — descriptors are
//! small sequential integers, so lookup/insert/remove are O(1) and
//! iteration is in ascending fd order. The *modelled* structure is
//! still the paper's separate-chaining hash table: a per-bucket
//! occupancy array tracks exactly the chain lengths the 2.2-era table
//! would have had (same multiplicative hash, same doubling policy), so
//! the `bucket_count`/`max_bucket_len`/`grow_count` diagnostics — and
//! the probe gauges built on them — are unchanged. Each entry carries
//! the driver-hint state of §3.2 (the hint flag and cached poll result).

use simcore::paged::PagedSlots;
use simkernel::{Fd, PollBits};

/// One interest entry.
// #[hot_struct]: one per registered descriptor
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// The descriptor.
    pub fd: Fd,
    /// The conditions the application asked for.
    pub events: PollBits,
    /// Driver hint: the socket's status changed since the last scan.
    pub hinted: bool,
    /// Cached result of the last driver poll callback.
    pub cached: PollBits,
}

/// Outcome of a `set` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// A new interest was inserted.
    Inserted,
    /// An existing interest was updated.
    Updated,
}

/// The interest-set hash table.
#[derive(Debug, Clone)]
pub struct InterestTable {
    /// Paged storage, indexed by fd: only the fd-range pages the set
    /// actually touches are resident, so a world with interests around
    /// descriptor 10^6 does not pay for a dense million-slot vector.
    slots: PagedSlots<Interest>,
    /// Total bucket-doubling events (diagnostic for benches).
    grows: u32,
    /// Modelled bucket count (always a power of two).
    buckets: usize,
    /// Modelled per-bucket occupancy (chain lengths).
    occ: Vec<u32>,
    /// `hist[k]` = number of buckets holding exactly `k` entries;
    /// keeps `max_bucket_len` O(1) under insert/remove.
    hist: Vec<u32>,
    /// Cached maximum occupancy (index of the highest non-zero `hist`).
    max_occ: usize,
    /// Fds that a hinted scan may need to visit, ascending: exactly the
    /// members whose hint flag is set or whose cached result is
    /// non-empty. `set`/`mark_hint` add to it, `remove` drops, and
    /// `set_scan_result` retires entries that scanned not-ready — so
    /// `DP_POLL` visits only descriptors whose state changed since the
    /// last scan instead of walking the whole table. Host-side
    /// acceleration only: it shadows the flags, never replaces them,
    /// and is not part of the modelled kernel state.
    dirty: Vec<Fd>,
}

/// Initial bucket count (small; the table doubles as needed).
const INITIAL_BUCKETS: usize = 8;

impl Default for InterestTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The 2.2-era fd-keyed multiplicative hash, reduced to a bucket index.
fn bucket_of(fd: Fd, buckets: usize) -> usize {
    let h = (fd as u64).wrapping_mul(0x9E3779B97F4A7C15);
    (h >> 32) as usize & (buckets - 1)
}

impl InterestTable {
    /// Creates an empty table.
    pub fn new() -> InterestTable {
        InterestTable {
            slots: PagedSlots::new(),
            grows: 0,
            buckets: INITIAL_BUCKETS,
            occ: vec![0; INITIAL_BUCKETS],
            hist: vec![INITIAL_BUCKETS as u32],
            max_occ: 0,
            dirty: Vec::new(),
        }
    }

    /// Records `fd` in the dirty list (idempotent, keeps it sorted).
    fn mark_dirty(&mut self, fd: Fd) {
        if let Err(pos) = self.dirty.binary_search(&fd) {
            self.dirty.insert(pos, fd);
        }
    }

    /// Number of interests in the set.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Heap bytes held by the table: interest pages plus the modelled
    /// bucket-occupancy arrays and the dirty list.
    pub fn mem_bytes(&self) -> usize {
        self.slots.heap_bytes()
            + self.occ.capacity() * std::mem::size_of::<u32>()
            + self.hist.capacity() * std::mem::size_of::<u32>()
            + self.dirty.capacity() * std::mem::size_of::<Fd>()
    }

    /// Current bucket count (diagnostic).
    pub fn bucket_count(&self) -> usize {
        self.buckets
    }

    /// Times the table has doubled (diagnostic).
    pub fn grow_count(&self) -> u32 {
        self.grows
    }

    /// Length of the fullest bucket (diagnostic: chain-length worst case
    /// the doubling policy is meant to bound).
    pub fn max_bucket_len(&self) -> usize {
        self.max_occ
    }

    /// Moves one bucket's modelled occupancy from `from` to `to`.
    fn occ_shift(&mut self, from: usize, to: usize) {
        self.hist[from] -= 1;
        if to >= self.hist.len() {
            self.hist.resize(to + 1, 0);
        }
        self.hist[to] += 1;
        if to > self.max_occ {
            self.max_occ = to;
        } else if from == self.max_occ && self.hist[from] == 0 {
            while self.max_occ > 0 && self.hist[self.max_occ] == 0 {
                self.max_occ -= 1;
            }
        }
    }

    /// Inserts or updates the interest for `fd`.
    ///
    /// With `or_semantics == false` (the paper's Linux behaviour) the new
    /// `events` *replace* the previous interest; with `true` (Solaris
    /// compatibility) they are OR'd in.
    pub fn set(&mut self, fd: Fd, events: PollBits, or_semantics: bool) -> SetOutcome {
        assert!(fd >= 0, "interest set for negative fd");
        let ix = fd as usize;
        if let Some(e) = self.slots.get_mut(ix) {
            e.events = if or_semantics {
                e.events | events
            } else {
                events
            };
            // An interest change invalidates the cached result.
            e.cached = PollBits::EMPTY;
            e.hinted = true;
            self.mark_dirty(fd);
            return SetOutcome::Updated;
        }
        self.slots.insert(
            ix,
            Interest {
                fd,
                events,
                // A fresh interest must be scanned at least once.
                hinted: true,
                cached: PollBits::EMPTY,
            },
        );
        self.mark_dirty(fd);
        let b = bucket_of(fd, self.buckets);
        let chain = self.occ[b] as usize;
        self.occ[b] += 1;
        self.occ_shift(chain, chain + 1);
        self.maybe_grow();
        SetOutcome::Inserted
    }

    /// Removes the interest for `fd`. Returns `true` if it existed.
    pub fn remove(&mut self, fd: Fd) -> bool {
        let Some(ix) = usize::try_from(fd).ok() else {
            return false;
        };
        if self.slots.take(ix).is_none() {
            return false;
        }
        if let Ok(pos) = self.dirty.binary_search(&fd) {
            self.dirty.remove(pos);
        }
        let b = bucket_of(fd, self.buckets);
        let chain = self.occ[b] as usize;
        self.occ[b] -= 1;
        self.occ_shift(chain, chain - 1);
        true
    }

    /// Looks up the interest for `fd`.
    pub fn get(&self, fd: Fd) -> Option<&Interest> {
        usize::try_from(fd).ok().and_then(|ix| self.slots.get(ix))
    }

    /// Looks up the interest for `fd` mutably.
    pub fn get_mut(&mut self, fd: Fd) -> Option<&mut Interest> {
        usize::try_from(fd)
            .ok()
            .and_then(|ix| self.slots.get_mut(ix))
    }

    /// Iterates over all interests in ascending fd order.
    pub fn iter(&self) -> impl Iterator<Item = &Interest> {
        self.slots.iter().map(|(_, e)| e)
    }

    /// Iterates mutably over all interests in ascending fd order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Interest> {
        self.slots.iter_mut().map(|(_, e)| e)
    }

    /// Marks the hint flag for `fd` (the driver saw an event).
    ///
    /// Returns `true` if the fd is in the set.
    pub fn mark_hint(&mut self, fd: Fd) -> bool {
        if let Some(e) = self.get_mut(fd) {
            e.hinted = true;
            self.mark_dirty(fd);
            true
        } else {
            false
        }
    }

    /// Records the outcome of a driver poll for `fd`: the result is
    /// cached and the hint consumed. An fd that scanned not-ready
    /// leaves the dirty list; a ready one stays, because its cached
    /// result must be revalidated by the next scan.
    pub fn set_scan_result(&mut self, fd: Fd, revents: PollBits) {
        let Some(e) = self.get_mut(fd) else { return };
        e.cached = revents;
        e.hinted = false;
        if revents.is_empty() {
            if let Ok(pos) = self.dirty.binary_search(&fd) {
                self.dirty.remove(pos);
            }
        }
    }

    /// Iterates, in ascending fd order, over exactly the entries whose
    /// hint flag is set or whose cached result is non-empty — the
    /// descriptors a hinted `DP_POLL` scan must visit. Equivalent to
    /// filtering [`InterestTable::iter`] on those flags, but O(dirty)
    /// instead of O(table).
    pub fn dirty_iter(&self) -> impl Iterator<Item = &Interest> + '_ {
        self.dirty.iter().filter_map(|&fd| self.get(fd))
    }

    /// "When the average bucket size is two, the number of buckets in
    /// the hash table is doubled. The hash table is never shrunk."
    fn maybe_grow(&mut self) {
        if self.slots.len() < self.buckets * 2 {
            return;
        }
        self.grows += 1;
        self.buckets *= 2;
        // Re-derive the modelled chain lengths under the widened mask —
        // the moral equivalent of the old table's rehash pass.
        self.occ.clear();
        self.occ.resize(self.buckets, 0);
        for (_, e) in self.slots.iter() {
            self.occ[bucket_of(e.fd, self.buckets)] += 1;
        }
        self.hist.clear();
        self.max_occ = 0;
        self.hist.push(0);
        for &c in &self.occ {
            let c = c as usize;
            if c >= self.hist.len() {
                self.hist.resize(c + 1, 0);
            }
            self.hist[c] += 1;
            if c > self.max_occ {
                self.max_occ = c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = InterestTable::new();
        assert_eq!(t.set(5, PollBits::POLLIN, false), SetOutcome::Inserted);
        assert_eq!(t.len(), 1);
        let e = t.get(5).unwrap();
        assert_eq!(e.events, PollBits::POLLIN);
        assert!(e.hinted, "fresh interests must be scanned");
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert!(t.get(5).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn replace_semantics_linux() {
        let mut t = InterestTable::new();
        t.set(3, PollBits::POLLIN, false);
        assert_eq!(t.set(3, PollBits::POLLOUT, false), SetOutcome::Updated);
        assert_eq!(t.get(3).unwrap().events, PollBits::POLLOUT);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn or_semantics_solaris() {
        let mut t = InterestTable::new();
        t.set(3, PollBits::POLLIN, true);
        t.set(3, PollBits::POLLOUT, true);
        assert_eq!(
            t.get(3).unwrap().events,
            PollBits::POLLIN | PollBits::POLLOUT
        );
    }

    #[test]
    fn doubles_at_average_bucket_size_two_never_shrinks() {
        let mut t = InterestTable::new();
        assert_eq!(t.bucket_count(), 8);
        for fd in 0..16 {
            t.set(fd, PollBits::POLLIN, false);
        }
        // 16 entries in 8 buckets = average 2 -> doubled.
        assert_eq!(t.bucket_count(), 16);
        for fd in 16..32 {
            t.set(fd, PollBits::POLLIN, false);
        }
        assert_eq!(t.bucket_count(), 32);
        assert_eq!(t.grow_count(), 2);
        // Removing everything does not shrink.
        for fd in 0..32 {
            t.remove(fd);
        }
        assert_eq!(t.bucket_count(), 32);
        assert!(t.is_empty());
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = InterestTable::new();
        for fd in 0..100 {
            t.set(fd, PollBits::POLLIN, false);
        }
        assert_eq!(t.len(), 100);
        for fd in 0..100 {
            assert!(t.get(fd).is_some(), "fd {fd} lost in growth");
        }
        let seen: usize = t.iter().count();
        assert_eq!(seen, 100);
    }

    #[test]
    fn mark_hint_only_for_members() {
        let mut t = InterestTable::new();
        t.set(1, PollBits::POLLIN, false);
        t.get_mut(1).unwrap().hinted = false;
        assert!(t.mark_hint(1));
        assert!(t.get(1).unwrap().hinted);
        assert!(!t.mark_hint(99));
    }

    #[test]
    fn update_invalidates_cache() {
        let mut t = InterestTable::new();
        t.set(1, PollBits::POLLIN, false);
        {
            let e = t.get_mut(1).unwrap();
            e.cached = PollBits::POLLIN;
            e.hinted = false;
        }
        t.set(1, PollBits::POLLIN | PollBits::POLLOUT, false);
        let e = t.get(1).unwrap();
        assert_eq!(e.cached, PollBits::EMPTY);
        assert!(e.hinted);
    }

    #[test]
    fn iteration_is_in_fd_order() {
        let mut t = InterestTable::new();
        for fd in [9, 2, 31, 0, 17] {
            t.set(fd, PollBits::POLLIN, false);
        }
        let fds: Vec<Fd> = t.iter().map(|e| e.fd).collect();
        assert_eq!(fds, vec![0, 2, 9, 17, 31]);
    }

    #[test]
    fn dirty_iter_tracks_hint_and_cache_flags() {
        // Drive the table through the full API surface and check, after
        // every operation, that `dirty_iter` yields exactly the entries
        // a full-table filter on the flags would — the invariant the
        // incremental DP_POLL scan rests on.
        let mut t = InterestTable::new();
        let check = |t: &InterestTable| {
            let fast: Vec<Fd> = t.dirty_iter().map(|e| e.fd).collect();
            let slow: Vec<Fd> = t
                .iter()
                .filter(|e| e.hinted || !e.cached.is_empty())
                .map(|e| e.fd)
                .collect();
            assert_eq!(fast, slow);
        };
        for i in 0..120u64 {
            let fd = ((i * 13) % 40) as Fd;
            match i % 5 {
                0 | 1 => {
                    t.set(fd, PollBits::POLLIN, false);
                }
                2 => {
                    t.mark_hint(fd);
                }
                3 => {
                    // Alternate ready / not-ready scan outcomes.
                    let r = if i % 2 == 0 {
                        PollBits::POLLIN
                    } else {
                        PollBits::EMPTY
                    };
                    t.set_scan_result(fd, r);
                }
                _ => {
                    t.remove(fd);
                }
            }
            check(&t);
        }
    }

    #[test]
    fn sparse_high_fds_stay_paged() {
        let mut t = InterestTable::new();
        t.set(1_000_000, PollBits::POLLIN, false);
        t.set(3, PollBits::POLLOUT, false);
        assert_eq!(t.len(), 2);
        assert!(t.get(1_000_000).is_some());
        let fds: Vec<Fd> = t.iter().map(|e| e.fd).collect();
        assert_eq!(fds, vec![3, 1_000_000]);
        // Two resident pages, not a dense million-slot vector.
        let page = 4096 * std::mem::size_of::<Option<Interest>>();
        assert!(t.mem_bytes() < 3 * page, "mem {} bytes", t.mem_bytes());
        assert!(t.remove(1_000_000));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn modelled_geometry_matches_a_reference_chain_table() {
        // Cross-check the occupancy model against a straightforward
        // chained table following the identical hash + doubling policy.
        let mut t = InterestTable::new();
        let mut reference: Vec<Vec<Fd>> = vec![Vec::new(); INITIAL_BUCKETS];
        let fds: Vec<Fd> = (0..200).map(|i| (i * 7) % 253).collect();
        let mut live: Vec<Fd> = Vec::new();
        for (i, &fd) in fds.iter().enumerate() {
            if i % 5 == 4 {
                let victim = live[i % live.len()];
                if t.remove(victim) {
                    live.retain(|&f| f != victim);
                    let nbuckets = reference.len();
                    reference[bucket_of(victim, nbuckets)].retain(|&f| f != victim);
                }
                continue;
            }
            if t.set(fd, PollBits::POLLIN, false) == SetOutcome::Inserted {
                live.push(fd);
                let nbuckets = reference.len();
                reference[bucket_of(fd, nbuckets)].push(fd);
                if live.len() >= reference.len() * 2 {
                    let doubled = reference.len() * 2;
                    let mut next: Vec<Vec<Fd>> = vec![Vec::new(); doubled];
                    for &f in &live {
                        next[bucket_of(f, doubled)].push(f);
                    }
                    reference = next;
                }
            }
            assert_eq!(t.bucket_count(), reference.len());
            assert_eq!(
                t.max_bucket_len(),
                reference.iter().map(Vec::len).max().unwrap_or(0),
                "after {} ops",
                i + 1
            );
        }
    }
}
