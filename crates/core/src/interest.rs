//! The kernel-resident interest-set hash table (§3.1).
//!
//! "A hash table contains each interest set within the kernel. On
//! average, hash tables provide fast lookup, insertion, and deletion.
//! For simplicity, when the average bucket size is two, the number of
//! buckets in the hash table is doubled. The hash table is never
//! shrunk."
//!
//! This is a from-scratch separate-chaining table following that policy
//! exactly, with per-entry room for the driver-hint state of §3.2 (the
//! hint flag and the cached poll result).

use simkernel::{Fd, PollBits};

/// One interest entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// The descriptor.
    pub fd: Fd,
    /// The conditions the application asked for.
    pub events: PollBits,
    /// Driver hint: the socket's status changed since the last scan.
    pub hinted: bool,
    /// Cached result of the last driver poll callback.
    pub cached: PollBits,
}

/// Outcome of a `set` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// A new interest was inserted.
    Inserted,
    /// An existing interest was updated.
    Updated,
}

/// The interest-set hash table.
#[derive(Debug, Clone)]
pub struct InterestTable {
    buckets: Vec<Vec<Interest>>,
    len: usize,
    /// Total bucket-doubling events (diagnostic for benches).
    grows: u32,
}

/// Initial bucket count (small; the table doubles as needed).
const INITIAL_BUCKETS: usize = 8;

impl Default for InterestTable {
    fn default() -> Self {
        Self::new()
    }
}

impl InterestTable {
    /// Creates an empty table.
    pub fn new() -> InterestTable {
        InterestTable {
            buckets: vec![Vec::new(); INITIAL_BUCKETS],
            len: 0,
            grows: 0,
        }
    }

    fn bucket_of(&self, fd: Fd) -> usize {
        // Multiplicative hash to spread the (dense, low) fd space; the
        // 2.2-era patch used a similar fd-keyed hash.
        let h = (fd as u64).wrapping_mul(0x9E3779B97F4A7C15);
        (h >> 32) as usize & (self.buckets.len() - 1)
    }

    /// Number of interests in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket count (diagnostic).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Times the table has doubled (diagnostic).
    pub fn grow_count(&self) -> u32 {
        self.grows
    }

    /// Length of the fullest bucket (diagnostic: chain-length worst case
    /// the doubling policy is meant to bound).
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Inserts or updates the interest for `fd`.
    ///
    /// With `or_semantics == false` (the paper's Linux behaviour) the new
    /// `events` *replace* the previous interest; with `true` (Solaris
    /// compatibility) they are OR'd in.
    pub fn set(&mut self, fd: Fd, events: PollBits, or_semantics: bool) -> SetOutcome {
        let b = self.bucket_of(fd);
        for e in &mut self.buckets[b] {
            if e.fd == fd {
                e.events = if or_semantics {
                    e.events | events
                } else {
                    events
                };
                // An interest change invalidates the cached result.
                e.cached = PollBits::EMPTY;
                e.hinted = true;
                return SetOutcome::Updated;
            }
        }
        self.buckets[b].push(Interest {
            fd,
            events,
            // A fresh interest must be scanned at least once.
            hinted: true,
            cached: PollBits::EMPTY,
        });
        self.len += 1;
        self.maybe_grow();
        SetOutcome::Inserted
    }

    /// Removes the interest for `fd`. Returns `true` if it existed.
    pub fn remove(&mut self, fd: Fd) -> bool {
        let b = self.bucket_of(fd);
        let bucket = &mut self.buckets[b];
        if let Some(pos) = bucket.iter().position(|e| e.fd == fd) {
            bucket.swap_remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Looks up the interest for `fd`.
    pub fn get(&self, fd: Fd) -> Option<&Interest> {
        self.buckets[self.bucket_of(fd)].iter().find(|e| e.fd == fd)
    }

    /// Looks up the interest for `fd` mutably.
    pub fn get_mut(&mut self, fd: Fd) -> Option<&mut Interest> {
        let b = self.bucket_of(fd);
        self.buckets[b].iter_mut().find(|e| e.fd == fd)
    }

    /// Iterates over all interests (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Interest> {
        self.buckets.iter().flatten()
    }

    /// Iterates mutably over all interests.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Interest> {
        self.buckets.iter_mut().flatten()
    }

    /// Marks the hint flag for `fd` (the driver saw an event).
    ///
    /// Returns `true` if the fd is in the set.
    pub fn mark_hint(&mut self, fd: Fd) -> bool {
        if let Some(e) = self.get_mut(fd) {
            e.hinted = true;
            true
        } else {
            false
        }
    }

    /// "When the average bucket size is two, the number of buckets in
    /// the hash table is doubled. The hash table is never shrunk."
    fn maybe_grow(&mut self) {
        if self.len < self.buckets.len() * 2 {
            return;
        }
        self.grows += 1;
        let new_size = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, vec![Vec::new(); new_size]);
        for e in old.into_iter().flatten() {
            let h = (e.fd as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let b = (h >> 32) as usize & (new_size - 1);
            self.buckets[b].push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = InterestTable::new();
        assert_eq!(t.set(5, PollBits::POLLIN, false), SetOutcome::Inserted);
        assert_eq!(t.len(), 1);
        let e = t.get(5).unwrap();
        assert_eq!(e.events, PollBits::POLLIN);
        assert!(e.hinted, "fresh interests must be scanned");
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert!(t.get(5).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn replace_semantics_linux() {
        let mut t = InterestTable::new();
        t.set(3, PollBits::POLLIN, false);
        assert_eq!(t.set(3, PollBits::POLLOUT, false), SetOutcome::Updated);
        assert_eq!(t.get(3).unwrap().events, PollBits::POLLOUT);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn or_semantics_solaris() {
        let mut t = InterestTable::new();
        t.set(3, PollBits::POLLIN, true);
        t.set(3, PollBits::POLLOUT, true);
        assert_eq!(
            t.get(3).unwrap().events,
            PollBits::POLLIN | PollBits::POLLOUT
        );
    }

    #[test]
    fn doubles_at_average_bucket_size_two_never_shrinks() {
        let mut t = InterestTable::new();
        assert_eq!(t.bucket_count(), 8);
        for fd in 0..16 {
            t.set(fd, PollBits::POLLIN, false);
        }
        // 16 entries in 8 buckets = average 2 -> doubled.
        assert_eq!(t.bucket_count(), 16);
        for fd in 16..32 {
            t.set(fd, PollBits::POLLIN, false);
        }
        assert_eq!(t.bucket_count(), 32);
        assert_eq!(t.grow_count(), 2);
        // Removing everything does not shrink.
        for fd in 0..32 {
            t.remove(fd);
        }
        assert_eq!(t.bucket_count(), 32);
        assert!(t.is_empty());
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = InterestTable::new();
        for fd in 0..100 {
            t.set(fd, PollBits::POLLIN, false);
        }
        assert_eq!(t.len(), 100);
        for fd in 0..100 {
            assert!(t.get(fd).is_some(), "fd {fd} lost in growth");
        }
        let seen: usize = t.iter().count();
        assert_eq!(seen, 100);
    }

    #[test]
    fn mark_hint_only_for_members() {
        let mut t = InterestTable::new();
        t.set(1, PollBits::POLLIN, false);
        t.get_mut(1).unwrap().hinted = false;
        assert!(t.mark_hint(1));
        assert!(t.get(1).unwrap().hinted);
        assert!(!t.mark_hint(99));
    }

    #[test]
    fn update_invalidates_cache() {
        let mut t = InterestTable::new();
        t.set(1, PollBits::POLLIN, false);
        {
            let e = t.get_mut(1).unwrap();
            e.cached = PollBits::POLLIN;
            e.hinted = false;
        }
        t.set(1, PollBits::POLLIN | PollBits::POLLOUT, false);
        let e = t.get(1).unwrap();
        assert_eq!(e.cached, PollBits::EMPTY);
        assert!(e.hinted);
    }
}
