//! Stock `poll()` — the baseline the paper improves on.
//!
//! Every invocation copies the whole interest set into the kernel,
//! invokes each file's driver poll callback, and copies results back. If
//! nothing is ready, the process is registered on every file's wait
//! queue before sleeping, and deregistered on wakeup — the per-descriptor
//! costs that §3 attributes the baseline's poor scalability to.

use simcore::span::Phase;
use simcore::time::SimTime;
use simkernel::{Kernel, Pid, PollBits};

use crate::pollfd::PollFd;

/// Result of one `poll()` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollOutcome {
    /// At least one descriptor is ready; `revents` fields in the passed
    /// array have been filled in and the count is returned.
    Ready(usize),
    /// Nothing ready; the process has been registered on all wait queues
    /// and should sleep (then call `sys_poll` again on wakeup).
    WouldBlock,
}

/// Executes `poll(fds, nfds, timeout)` against the simulated kernel.
///
/// Must be called inside a batch ([`Kernel::begin_batch`]). On
/// [`PollOutcome::WouldBlock`] the caller is expected to
/// [`Kernel::end_batch_sleep`] and re-invoke on wakeup; the wait-queue
/// deregistration cost of the previous sleep is charged at the start of
/// the next call, mirroring where the real kernel does that work.
///
/// # Examples
///
/// See the `thttpd` server in the `servers` crate for the canonical
/// event loop built on this call.
pub fn sys_poll(
    kernel: &mut Kernel,
    _now: SimTime,
    pid: Pid,
    fds: &mut [PollFd],
    timeout_ms: i32,
) -> PollOutcome {
    let cost = *kernel.cost_model();
    kernel.charge_app(pid, cost.syscall);
    let probe = kernel.probe_mut();
    probe.inc("poll.calls");
    // Stock poll() pays one driver callback per descriptor per call —
    // the baseline the devpoll.driver_polls_avoided counter is judged
    // against.
    probe.add("poll.driver_polls", fds.len() as u64);

    let spans_on = kernel.spans().enabled();

    // Deregister wait-queue entries left by a previous sleeping poll,
    // then copy-in and parse the entire interest set — every call. Both
    // are poll()'s per-call interest-declaration tax.
    let t_reg = kernel.batch_acc(pid);
    let removed = kernel.unwatch_all(pid);
    kernel.charge_app(pid, cost.wq_remove * removed as u64);
    kernel.charge_app(pid, cost.pollfd_copyin * fds.len() as u64);
    if spans_on {
        kernel.span_leaf(pid, Phase::InterestReg, t_reg);
    }

    // Scan: one driver poll callback per descriptor, ready or not
    // (charged in bulk — the sum is identical to a per-descriptor
    // charge, without a million accounting calls on the host).
    let t_scan = kernel.batch_acc(pid);
    kernel.charge_app(pid, cost.driver_poll * fds.len() as u64);
    let mut ready = 0usize;
    for f in fds.iter_mut() {
        let state = kernel.readiness(pid, f.fd);
        f.revents = state & (f.events | PollBits::always_reported());
        if !f.revents.is_empty() {
            ready += 1;
        }
    }
    if spans_on {
        kernel.span_leaf(pid, Phase::ReadyScan, t_scan);
    }

    if ready > 0 {
        // Result copy-out, proportional to the *whole* array in the real
        // syscall (revents live inline in the user array).
        let t_out = kernel.batch_acc(pid);
        kernel.charge_app(pid, cost.pollfd_copyout * fds.len() as u64);
        if spans_on {
            kernel.span_leaf(pid, Phase::Delivery, t_out);
        }
        return PollOutcome::Ready(ready);
    }
    if timeout_ms == 0 {
        return PollOutcome::Ready(0);
    }

    // Nothing ready: register on every file's wait queue, then sleep.
    let t_wq = kernel.batch_acc(pid);
    kernel.charge_app(pid, cost.wq_add * fds.len() as u64);
    for f in fds.iter() {
        kernel.watch(pid, f.fd);
    }
    if spans_on {
        kernel.span_leaf(pid, Phase::InterestReg, t_wq);
    }
    PollOutcome::WouldBlock
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;
    use simkernel::CostModel;
    use simnet::{HostId, LinkConfig, Network, SockAddr, TcpConfig};

    const CLIENT: HostId = HostId(0);
    const SERVER: HostId = HostId(1);

    fn setup_with_conn() -> (Network, Kernel, Pid, simkernel::Fd, simnet::EndpointId) {
        let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
        let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
        let pid = kernel.spawn_default();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let conn = net
            .connect(
                SimTime::ZERO,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        // Pump the handshake.
        let mut t = SimTime::ZERO;
        while let Some(next) = net.next_deadline() {
            if next > SimTime::from_millis(10) {
                break;
            }
            t = next;
            for n in net.advance(t) {
                kernel.on_net(t, &n);
            }
        }
        let _ = kernel.advance(t);
        kernel.begin_batch(t, pid);
        let fd = kernel.sys_accept(&mut net, t, pid, lfd).unwrap();
        kernel.end_batch(t, pid);
        let _ = kernel.advance(SimTime::from_millis(20));
        (
            net,
            kernel,
            pid,
            fd,
            simnet::EndpointId::new(conn, simnet::Side::Client),
        )
    }

    #[test]
    fn reports_ready_fd() {
        let (mut net, mut kernel, pid, fd, client_ep) = setup_with_conn();
        let t = SimTime::from_millis(20);
        net.send(t, client_ep, b"data").unwrap();
        while let Some(next) = net.next_deadline() {
            if next > SimTime::from_millis(30) {
                break;
            }
            for n in net.advance(next) {
                kernel.on_net(next, &n);
            }
        }
        let t = SimTime::from_millis(30);
        kernel.begin_batch(t, pid);
        let mut fds = [PollFd::new(fd, PollBits::POLLIN)];
        let out = sys_poll(&mut kernel, t, pid, &mut fds, -1);
        kernel.end_batch(t, pid);
        assert_eq!(out, PollOutcome::Ready(1));
        assert!(fds[0].revents.contains(PollBits::POLLIN));
    }

    #[test]
    fn would_block_registers_watchers() {
        let (_net, mut kernel, pid, fd, _client) = setup_with_conn();
        let t = SimTime::from_millis(20);
        kernel.begin_batch(t, pid);
        let mut fds = [PollFd::new(fd, PollBits::POLLIN)];
        let out = sys_poll(&mut kernel, t, pid, &mut fds, -1);
        assert_eq!(out, PollOutcome::WouldBlock);
        assert_eq!(kernel.watch_count(pid), 1);
        kernel.end_batch_sleep(t, pid, None);
    }

    #[test]
    fn zero_timeout_returns_immediately() {
        let (_net, mut kernel, pid, fd, _client) = setup_with_conn();
        let t = SimTime::from_millis(20);
        kernel.begin_batch(t, pid);
        let mut fds = [PollFd::new(fd, PollBits::POLLIN)];
        let out = sys_poll(&mut kernel, t, pid, &mut fds, 0);
        kernel.end_batch(t, pid);
        assert_eq!(out, PollOutcome::Ready(0));
        assert_eq!(kernel.watch_count(pid), 0);
    }

    #[test]
    fn cost_scales_linearly_with_interest_set_size() {
        // The core scalability defect of stock poll(): cost is O(n) in
        // the interest-set size even when nothing is ready.
        let (_net, mut kernel, pid, fd, _client) = setup_with_conn();
        let t = SimTime::from_millis(20);

        let batch_cost = |kernel: &mut Kernel, n: usize| -> SimDuration {
            kernel.begin_batch(t, pid);
            // Use the same (valid) fd n times: cost model does not care.
            let mut fds = vec![PollFd::new(fd, PollBits::POLLIN); n];
            let _ = sys_poll(kernel, t, pid, &mut fds, 0);
            let start = t;
            let done = kernel.end_batch(start, pid);
            done.saturating_duration_since(start)
        };
        // Let the CPU idle out between measurements by using fresh
        // kernels... simpler: measure incremental cost via batch size.
        let c10 = batch_cost(&mut kernel, 10);
        let c1000 = batch_cost(&mut kernel, 1000);
        let per_fd = (c1000.as_nanos() as i64 - c10.as_nanos() as i64) / 990;
        let cm = CostModel::k6_2_400mhz();
        // Nothing is ready and the timeout is zero, so no copy-out and no
        // wait-queue registration: copy-in plus driver callback per fd.
        let expected = (cm.pollfd_copyin + cm.driver_poll) as i64;
        assert!(
            (per_fd - expected).abs() <= expected / 10,
            "per-fd cost {per_fd} should be ~{expected}"
        );
    }

    #[test]
    fn reports_hup_even_when_not_requested() {
        let (mut net, mut kernel, pid, fd, client_ep) = setup_with_conn();
        let t = SimTime::from_millis(20);
        net.close(t, client_ep).unwrap();
        while let Some(next) = net.next_deadline() {
            if next > SimTime::from_millis(30) {
                break;
            }
            for n in net.advance(next) {
                kernel.on_net(next, &n);
            }
        }
        let t = SimTime::from_millis(30);
        kernel.begin_batch(t, pid);
        // Ask only for POLLOUT; HUP must still be reported.
        let mut fds = [PollFd::new(fd, PollBits::POLLOUT)];
        let out = sys_poll(&mut kernel, t, pid, &mut fds, -1);
        kernel.end_batch(t, pid);
        assert_eq!(out, PollOutcome::Ready(1));
        assert!(fds[0].revents.contains(PollBits::POLLHUP));
    }
}
