#![warn(missing_docs)]

//! `devpoll` — the primary contribution of *Scalable Network I/O in
//! Linux* (Provos & Lever, USENIX 2000), reimplemented against the
//! simulated kernel in [`simkernel`].
//!
//! Three event-notification mechanisms:
//!
//! * [`stock`] — baseline `poll()` with its O(n) copy, scan, and
//!   wait-queue costs;
//! * [`device`] — the `/dev/poll` character device: kernel-resident
//!   interest sets in a doubling hash table ([`interest`]), incremental
//!   updates via `write()` (including `POLLREMOVE`), scanning via
//!   `ioctl(DP_POLL)`, device-driver hints through backmapping lists, a
//!   shared `mmap` result area, and the combined update+poll operation
//!   from the paper's future-work list;
//! * [`rtsig`] — the POSIX RT-signal event API (`F_SETSIG` +
//!   `sigwaitinfo`), including queue-overflow detection and the proposed
//!   `sigtimedwait4()` batch pickup.
//!
//! [`backend`] wraps the two poll-shaped mechanisms behind one trait so
//! the same server can run on either, as the paper's stock and modified
//! `thttpd` do.

pub mod audit;
pub mod backend;
pub mod device;
pub mod interest;
pub mod lockdep;
pub mod pollfd;
pub mod rtsig;
pub mod select;
pub mod stock;

pub use backend::{DevPollBackend, EventBackend, SelectBackend, StockPollBackend, WaitResult};
pub use device::{DevPollConfig, DevPollDevice, DevPollRegistry, DevPollStats};
pub use interest::{Interest, InterestTable, SetOutcome};
pub use lockdep::{LockClass, LockGraph, OrderViolation};
pub use pollfd::{DvPoll, PollFd};
pub use rtsig::{RtEvent, RtSignalApi, SignalAssignment};
pub use select::{sys_select, FdSet, FD_SETSIZE};
pub use stock::{sys_poll, PollOutcome};
