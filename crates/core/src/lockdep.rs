//! A lockdep-style lock-order recorder for the `/dev/poll` locking
//! scheme.
//!
//! The paper's implementation serializes the backmapping lists with one
//! global rwlock and calls per-socket locks "an obvious refinement"
//! (§3.2). That refinement is exactly where an AB/BA deadlock can sneak
//! in: the scan path takes the backmap lock and then touches sockets,
//! while the driver event path starts from a socket. This module records
//! every simulated acquisition as an ordering edge between lock
//! *classes* (as Linux lockdep does) and detects cycles, so the
//! per-socket-lock refinement can land with a deadlock detector already
//! watching it.
//!
//! Recording is wired into [`crate::device`] under the `simcheck`
//! feature; the graph itself is always compiled so tools and tests can
//! use it directly.

use std::collections::{BTreeMap, BTreeSet};

/// A lock class (lockdep granularity: all per-socket locks are one
/// class, whatever socket they guard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// The global backmap rwlock of §3.2.
    Backmap,
    /// A per-socket backmap lock (the §3.2 refinement).
    Socket,
    /// The interest hash-table lock.
    InterestTable,
}

impl LockClass {
    fn name(self) -> &'static str {
        match self {
            LockClass::Backmap => "backmap",
            LockClass::Socket => "socket",
            LockClass::InterestTable => "interest-table",
        }
    }
}

/// One recorded ordering violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderViolation {
    /// The acquisition that closed a cycle.
    pub acquired: LockClass,
    /// A lock already held that `acquired` is ordered before elsewhere.
    pub held: LockClass,
}

impl std::fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lock-order inversion: acquired {} while holding {}, but {} -> {} was recorded earlier",
            self.acquired.name(),
            self.held.name(),
            self.acquired.name(),
            self.held.name()
        )
    }
}

/// The lock-order graph of one simulated kernel context.
///
/// `acquire`/`release` model a single thread of execution (the
/// simulation is single-threaded); edges accumulate across the whole
/// run, so an AB order in one code path and a BA order in another are
/// caught even though no two threads ever actually interleave.
#[derive(Debug, Default, Clone)]
pub struct LockGraph {
    /// held-before edges: `a -> b` means `b` was acquired while `a` was
    /// held.
    edges: BTreeMap<LockClass, BTreeSet<LockClass>>,
    held: Vec<LockClass>,
    violations: Vec<OrderViolation>,
    acquisitions: u64,
}

impl LockGraph {
    /// Creates an empty graph.
    pub fn new() -> LockGraph {
        LockGraph::default()
    }

    /// Records acquiring a lock of `class` while everything previously
    /// acquired (and not yet released) is still held.
    pub fn acquire(&mut self, class: LockClass) {
        self.acquisitions += 1;
        for &held in &self.held {
            if held == class {
                // Recursive same-class acquisition: rwlock read sides
                // allow it; not an ordering edge.
                continue;
            }
            // Before inserting held -> class, check the reverse path:
            // if class already reaches held, this acquisition inverts an
            // established order.
            if self.reaches(class, held) {
                self.violations.push(OrderViolation {
                    acquired: class,
                    held,
                });
            }
            self.edges.entry(held).or_default().insert(class);
        }
        self.held.push(class);
    }

    /// Records releasing the most recent acquisition of `class`.
    pub fn release(&mut self, class: LockClass) {
        if let Some(pos) = self.held.iter().rposition(|&c| c == class) {
            self.held.remove(pos);
        }
    }

    /// Whether `from` reaches `to` through recorded held-before edges.
    fn reaches(&self, from: LockClass, to: LockClass) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if c == to {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            if let Some(next) = self.edges.get(&c) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Ordering violations recorded so far.
    pub fn violations(&self) -> &[OrderViolation] {
        &self.violations
    }

    /// Total acquisitions recorded (evidence the recorder is wired in).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Recorded held-before edges as `(held, then_acquired)` pairs.
    pub fn edges(&self) -> Vec<(LockClass, LockClass)> {
        self.edges
            .iter()
            .flat_map(|(&a, bs)| bs.iter().map(move |&b| (a, b)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_order_is_clean() {
        let mut g = LockGraph::new();
        for _ in 0..3 {
            g.acquire(LockClass::Backmap);
            g.acquire(LockClass::Socket);
            g.release(LockClass::Socket);
            g.release(LockClass::Backmap);
        }
        assert!(g.violations().is_empty());
        assert_eq!(g.acquisitions(), 6);
        assert_eq!(g.edges(), vec![(LockClass::Backmap, LockClass::Socket)]);
    }

    #[test]
    fn inverted_order_is_detected() {
        let mut g = LockGraph::new();
        g.acquire(LockClass::Backmap);
        g.acquire(LockClass::Socket);
        g.release(LockClass::Socket);
        g.release(LockClass::Backmap);
        // The driver event path taking socket -> backmap would deadlock
        // against the scan path above.
        g.acquire(LockClass::Socket);
        g.acquire(LockClass::Backmap);
        assert_eq!(
            g.violations(),
            &[OrderViolation {
                acquired: LockClass::Backmap,
                held: LockClass::Socket,
            }]
        );
    }

    #[test]
    fn transitive_inversion_is_detected() {
        let mut g = LockGraph::new();
        g.acquire(LockClass::Backmap);
        g.acquire(LockClass::InterestTable);
        g.release(LockClass::InterestTable);
        g.release(LockClass::Backmap);
        g.acquire(LockClass::InterestTable);
        g.acquire(LockClass::Socket);
        g.release(LockClass::Socket);
        g.release(LockClass::InterestTable);
        // backmap -> interest-table -> socket established; socket ->
        // backmap closes the loop.
        g.acquire(LockClass::Socket);
        g.acquire(LockClass::Backmap);
        assert_eq!(g.violations().len(), 1);
    }

    #[test]
    fn recursive_read_acquisition_is_not_an_edge() {
        let mut g = LockGraph::new();
        g.acquire(LockClass::Backmap);
        g.acquire(LockClass::Backmap);
        g.release(LockClass::Backmap);
        g.release(LockClass::Backmap);
        assert!(g.violations().is_empty());
        assert!(g.edges().is_empty());
    }
}
