//! The `pollfd` and `dvpoll` structures (Figs. 1 and 3 of the paper).

use simkernel::{Fd, PollBits};

/// The standard `pollfd` struct (paper Fig. 1).
///
/// ```c
/// struct pollfd {
///     int fd;
///     short events;
///     short revents;
/// };
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PollFd {
    /// The descriptor of interest.
    pub fd: Fd,
    /// Requested conditions.
    pub events: PollBits,
    /// Returned conditions.
    pub revents: PollBits,
}

impl PollFd {
    /// Creates an interest entry with empty `revents`.
    pub fn new(fd: Fd, events: PollBits) -> PollFd {
        PollFd {
            fd,
            events,
            revents: PollBits::EMPTY,
        }
    }

    /// An entry that removes `fd` from a `/dev/poll` interest set
    /// (`events = POLLREMOVE`, §3.1).
    pub fn remove(fd: Fd) -> PollFd {
        PollFd {
            fd,
            events: PollBits::POLLREMOVE,
            revents: PollBits::EMPTY,
        }
    }

    /// Size of the C struct on the wire/copy path: `int + short + short`.
    pub const BYTES: usize = 8;
}

/// The `dvpoll` struct passed to `ioctl(DP_POLL)` (paper Fig. 3).
///
/// ```c
/// struct dvpoll {
///     struct pollfd* dp_fds;
///     int dp_nfds;
///     int dp_timeout;
/// };
/// ```
///
/// In the simulation, `dp_fds` degenerates to "does the caller pass a
/// user buffer or `NULL`": with the shared `mmap` result area the
/// application passes `NULL` and the kernel deposits results into the
/// mapping (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DvPoll {
    /// `true` when `dp_fds == NULL`, i.e. results go to the mmap area.
    pub null_dp_fds: bool,
    /// Maximum results to return (`dp_nfds`).
    pub dp_nfds: usize,
    /// Poll timeout in milliseconds; `-1` blocks indefinitely, `0` never
    /// blocks (`dp_timeout`).
    pub dp_timeout: i32,
}

impl DvPoll {
    /// A conventional call returning results through a user buffer.
    pub fn into_user_buffer(max: usize, timeout_ms: i32) -> DvPoll {
        DvPoll {
            null_dp_fds: false,
            dp_nfds: max,
            dp_timeout: timeout_ms,
        }
    }

    /// A call depositing results into the shared mapping (`dp_fds ==
    /// NULL`).
    pub fn into_mmap(max: usize, timeout_ms: i32) -> DvPoll {
        DvPoll {
            null_dp_fds: true,
            dp_nfds: max,
            dp_timeout: timeout_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_entry_carries_pollremove() {
        let e = PollFd::remove(7);
        assert_eq!(e.fd, 7);
        assert!(e.events.contains(PollBits::POLLREMOVE));
        assert!(e.revents.is_empty());
    }

    #[test]
    fn struct_size_matches_c_layout() {
        // int (4) + short (2) + short (2).
        assert_eq!(PollFd::BYTES, 8);
    }

    #[test]
    fn dvpoll_constructors() {
        let a = DvPoll::into_user_buffer(64, -1);
        assert!(!a.null_dp_fds);
        assert_eq!(a.dp_nfds, 64);
        assert_eq!(a.dp_timeout, -1);
        let b = DvPoll::into_mmap(32, 0);
        assert!(b.null_dp_fds);
    }
}
