//! The runtime invariant auditor: a checked mode for the `/dev/poll`
//! core (enable with `--features simcheck`).
//!
//! Every operation on a device revalidates the paper's stated
//! invariants instead of trusting the fast path:
//!
//! * cached-"ready" interests re-enter every scan ("\[they have\] to be
//!   reevaluated each time", §3.2) — a stale cache served without a
//!   driver poll is exactly the silent-wrong-results bug class this
//!   mode exists for;
//! * `POLLREMOVE` purges the interest from *both* the hash table and
//!   the backmapping (watcher) registration;
//! * a written `events` field **replaces** prior interest — the
//!   documented divergence from Solaris' OR semantics (§3.1);
//! * the interest hash table doubles at average bucket size two, stays
//!   a power of two, and never shrinks (§3.1).
//!
//! Violations panic with a `simcheck audit:` message; check counts
//! accumulate in the kernel probe under `audit.checks` so a run can
//! prove the auditor was live. The functions are compiled
//! unconditionally (they have their own tests); [`crate::device`] calls
//! them only under the `simcheck` feature.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use simkernel::{Fd, Kernel, Pid, PollBits};

use crate::device::DevPollDevice;
use crate::pollfd::PollFd;

/// Audits the table and backmap state after a `write(dpfd, ...)` batch.
///
/// `prev_buckets` is the device's bucket count before the batch;
/// `removed` lists the fds whose interests the batch actually removed
/// (a `POLLREMOVE` of an absent fd is a harmless no-op and must not be
/// audited against the shared watcher registry — another backend may
/// legitimately hold a watcher on that fd).
/// Returns the number of checks performed; panics on any violation.
pub fn check_write(
    kernel: &Kernel,
    pid: Pid,
    dev: &DevPollDevice,
    entries: &[PollFd],
    removed: &[Fd],
    or_semantics: bool,
    prev_buckets: usize,
) -> u64 {
    let mut checks = 0u64;
    // Later entries for the same fd win; audit final per-fd state only.
    let mut last: BTreeMap<Fd, &PollFd> = BTreeMap::new();
    for e in entries {
        last.insert(e.fd, e);
    }
    let removed: BTreeSet<Fd> = removed.iter().copied().collect();
    let table = dev.interest();
    for (fd, e) in last {
        if e.events.contains(PollBits::POLLREMOVE) {
            checks += 1;
            assert!(
                table.get(fd).is_none(),
                "simcheck audit: POLLREMOVE left fd {fd} in the interest hash table"
            );
            if removed.contains(&fd) {
                checks += 1;
                assert!(
                    !kernel.is_watched(pid, fd),
                    "simcheck audit: POLLREMOVE left fd {fd} on the backmapping (watcher) list"
                );
            }
        } else {
            let entry = table.get(fd).unwrap_or_else(|| {
                panic!("simcheck audit: written interest for fd {fd} missing from the hash table")
            });
            checks += 4;
            if !or_semantics {
                assert_eq!(
                    entry.events, e.events,
                    "simcheck audit: events field must replace prior interest for fd {fd} \
                     (Solaris OR semantics leaked in)"
                );
            } else {
                assert!(
                    entry.events.contains(e.events),
                    "simcheck audit: OR semantics dropped requested bits for fd {fd}"
                );
            }
            assert_eq!(
                entry.cached,
                PollBits::EMPTY,
                "simcheck audit: interest update for fd {fd} did not invalidate the result cache"
            );
            assert!(
                entry.hinted,
                "simcheck audit: updated interest for fd {fd} not marked for rescan"
            );
            assert!(
                kernel.is_watched(pid, fd),
                "simcheck audit: written interest for fd {fd} has no backmap (watcher) entry"
            );
        }
    }
    checks += check_table_shape(dev, prev_buckets);
    checks
}

/// Audits the hash table's doubling policy: power-of-two bucket count,
/// average bucket size below two after every operation, never shrunk.
pub fn check_table_shape(dev: &DevPollDevice, prev_buckets: usize) -> u64 {
    let table = dev.interest();
    let buckets = table.bucket_count();
    assert!(
        buckets.is_power_of_two(),
        "simcheck audit: bucket count {buckets} is not a power of two"
    );
    assert!(
        buckets >= prev_buckets,
        "simcheck audit: hash table shrank from {prev_buckets} to {buckets} buckets \
         (the paper's table is never shrunk)"
    );
    assert!(
        table.len() < 2 * buckets,
        "simcheck audit: {} interests in {buckets} buckets — average bucket size reached 2 \
         without doubling",
        table.len()
    );
    3
}

/// Audits a `DP_POLL` candidate set before the scan: with hints enabled,
/// every cached-ready interest must be revalidated this scan.
pub fn check_scan_candidates(dev: &DevPollDevice, candidates: &[(Fd, PollBits)]) -> u64 {
    let set: BTreeSet<Fd> = candidates.iter().map(|&(fd, _)| fd).collect();
    let mut checks = 0u64;
    for e in dev.interest().iter() {
        if !e.cached.is_empty() {
            checks += 1;
            assert!(
                set.contains(&e.fd),
                "simcheck audit: cached-ready fd {} skipped revalidation \
                 (cached {:?} served stale)",
                e.fd,
                e.cached
            );
        }
    }
    checks
}

/// Audits a `DP_POLL` result set after the scan: every returned
/// `revents` must match the kernel's current readiness truth, and every
/// scanned interest must have its hint consumed.
pub fn check_scan_results(
    kernel: &Kernel,
    pid: Pid,
    dev: &DevPollDevice,
    candidates: &[(Fd, PollBits)],
    results: &[PollFd],
) -> u64 {
    let mut checks = 0u64;
    for r in results {
        checks += 1;
        let truth = kernel.readiness(pid, r.fd) & (r.events | PollBits::always_reported());
        assert_eq!(
            r.revents, truth,
            "simcheck audit: DP_POLL returned {:?} for fd {} but current readiness is {:?} \
             (result not revalidated before return)",
            r.revents, r.fd, truth
        );
    }
    for &(fd, _) in candidates {
        if let Some(e) = dev.interest().get(fd) {
            checks += 1;
            assert!(
                !e.hinted,
                "simcheck audit: scanned fd {fd} still carries its driver hint"
            );
        }
    }
    checks
}
