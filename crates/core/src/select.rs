//! `select()` — the even older baseline.
//!
//! The paper benchmarks stock `poll()`, but the era's default interface
//! (and real thttpd's default) was `select()`, whose costs are worse in
//! a characteristic way: three descriptor *bitmaps* cross the user/kernel
//! boundary and the kernel walks every slot up to `maxfd + 1` — member
//! or not — so cost is O(maxfd) rather than O(interest-set size). The
//! 1024-slot `FD_SETSIZE` is the hard limit the paper's httperf note
//! alludes to ("httperf assumes that the maximum is 1024").

use simcore::span::Phase;
use simcore::time::SimTime;
use simkernel::{Fd, Kernel, Pid, PollBits};

use crate::stock::PollOutcome;

/// The classic compile-time bitmap size.
pub const FD_SETSIZE: usize = 1024;

/// A descriptor bitmap (`fd_set`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSet {
    bits: [u64; FD_SETSIZE / 64],
}

impl Default for FdSet {
    fn default() -> Self {
        Self::new()
    }
}

impl FdSet {
    /// An empty set (`FD_ZERO`).
    pub fn new() -> FdSet {
        FdSet {
            bits: [0; FD_SETSIZE / 64],
        }
    }

    /// `FD_SET`. Returns `false` (and does nothing) for descriptors at
    /// or beyond [`FD_SETSIZE`] — the overflow that silently corrupted
    /// memory in careless C programs.
    pub fn set(&mut self, fd: Fd) -> bool {
        if fd < 0 || fd as usize >= FD_SETSIZE {
            return false;
        }
        self.bits[fd as usize / 64] |= 1 << (fd as usize % 64);
        true
    }

    /// `FD_CLR`.
    pub fn clear(&mut self, fd: Fd) {
        if fd >= 0 && (fd as usize) < FD_SETSIZE {
            self.bits[fd as usize / 64] &= !(1 << (fd as usize % 64));
        }
    }

    /// `FD_ISSET`.
    pub fn is_set(&self, fd: Fd) -> bool {
        if fd < 0 || fd as usize >= FD_SETSIZE {
            return false;
        }
        self.bits[fd as usize / 64] & (1 << (fd as usize % 64)) != 0
    }

    /// Number of set descriptors.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Highest set descriptor plus one (the `nfds` argument).
    pub fn nfds(&self) -> usize {
        for (i, w) in self.bits.iter().enumerate().rev() {
            if *w != 0 {
                return i * 64 + (64 - w.leading_zeros() as usize);
            }
        }
        0
    }

    /// Iterates set descriptors in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Fd> + '_ {
        (0..FD_SETSIZE as Fd).filter(move |&fd| self.is_set(fd))
    }
}

/// Executes `select(nfds, readfds, writefds, NULL, timeout)`.
///
/// On [`PollOutcome::Ready`], `read_set` and `write_set` are rewritten
/// in place to contain only the ready descriptors (exactly the API shape
/// that forces applications to rebuild both sets before every call). On
/// [`PollOutcome::WouldBlock`] the caller sleeps and retries.
pub fn sys_select(
    kernel: &mut Kernel,
    _now: SimTime,
    pid: Pid,
    read_set: &mut FdSet,
    write_set: &mut FdSet,
    timeout_ms: i32,
) -> PollOutcome {
    let cost = *kernel.cost_model();
    kernel.charge_app(pid, cost.syscall);
    let spans_on = kernel.spans().enabled();

    // Deregister wait-queue entries from a previous sleeping call.
    let t_reg = kernel.batch_acc(pid);
    let removed = kernel.unwatch_all(pid);
    kernel.charge_app(pid, cost.wq_remove * removed as u64);

    let nfds = read_set.nfds().max(write_set.nfds());
    let probe = kernel.probe_mut();
    probe.inc("select.calls");
    probe.add("select.bit_walk", nfds as u64);
    // Three bitmaps in (readfds, writefds, exceptfds) — the per-call
    // interest-declaration tax, like poll()'s copy-in; the three result
    // bitmaps out are charged with the scan below (same 6× total).
    let bitmap_bytes = nfds.div_ceil(8) as u64;
    kernel.charge_app(pid, cost.copy_per_byte * bitmap_bytes * 3);
    if spans_on {
        kernel.span_leaf(pid, Phase::InterestReg, t_reg);
    }
    // The O(maxfd) slot walk, members or not.
    let t_scan = kernel.batch_acc(pid);
    kernel.charge_app(pid, cost.select_bit_walk * nfds as u64);

    let mut ready_read = FdSet::new();
    let mut ready_write = FdSet::new();
    let mut ready = 0usize;
    for fd in 0..nfds as Fd {
        let want_r = read_set.is_set(fd);
        let want_w = write_set.is_set(fd);
        if !want_r && !want_w {
            continue;
        }
        // Driver poll callback per member, like poll().
        kernel.charge_app(pid, cost.driver_poll);
        let state = kernel.readiness(pid, fd);
        // select reports error conditions as readable/writable.
        let r_bits = PollBits::POLLIN | PollBits::POLLHUP | PollBits::POLLERR | PollBits::POLLNVAL;
        let w_bits = PollBits::POLLOUT | PollBits::POLLERR | PollBits::POLLNVAL;
        let mut hit = false;
        if want_r && state.intersects(r_bits) {
            ready_read.set(fd);
            hit = true;
        }
        if want_w && state.intersects(w_bits) {
            ready_write.set(fd);
            hit = true;
        }
        if hit {
            ready += 1;
        }
    }
    if spans_on {
        kernel.span_leaf(pid, Phase::ReadyScan, t_scan);
    }

    if ready > 0 || timeout_ms == 0 {
        // Result delivery: the three bitmaps cross back to user space.
        let t_out = kernel.batch_acc(pid);
        kernel.charge_app(pid, cost.copy_per_byte * bitmap_bytes * 3);
        if spans_on {
            kernel.span_leaf(pid, Phase::Delivery, t_out);
        }
        *read_set = ready_read;
        *write_set = ready_write;
        return PollOutcome::Ready(ready);
    }
    // Blocking: the kernel still walked and rewrote all three result
    // bitmaps before deciding to sleep — same 6× copy total as the
    // ready path (and as the pre-span cost model).
    kernel.charge_app(pid, cost.copy_per_byte * bitmap_bytes * 3);
    // Register and sleep.
    let mut registered = 0u64;
    for fd in read_set.iter() {
        kernel.watch(pid, fd);
        registered += 1;
    }
    for fd in write_set.iter() {
        if !read_set.is_set(fd) {
            kernel.watch(pid, fd);
            registered += 1;
        }
    }
    kernel.charge_app(pid, cost.wq_add * registered);
    PollOutcome::WouldBlock
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdset_basics() {
        let mut s = FdSet::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.nfds(), 0);
        assert!(s.set(0));
        assert!(s.set(63));
        assert!(s.set(64));
        assert!(s.set(1023));
        assert!(!s.set(1024), "FD_SETSIZE is a hard wall");
        assert!(!s.set(-1));
        assert_eq!(s.count(), 4);
        assert_eq!(s.nfds(), 1024);
        assert!(s.is_set(63));
        assert!(!s.is_set(62));
        s.clear(63);
        assert!(!s.is_set(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 1023]);
    }

    #[test]
    fn nfds_tracks_highest_member() {
        let mut s = FdSet::new();
        s.set(5);
        assert_eq!(s.nfds(), 6);
        s.set(200);
        assert_eq!(s.nfds(), 201);
        s.clear(200);
        assert_eq!(s.nfds(), 6);
    }
}
