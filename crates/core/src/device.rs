//! The `/dev/poll` device (§3): kernel-resident interest sets maintained
//! by `write()`, scanning via `ioctl(DP_POLL)`, driver hints through
//! backmapping lists (§3.2), and the shared `mmap` result area (§3.3).

use std::collections::BTreeMap;

use simcore::span::Phase;
use simcore::time::{SimDuration, SimTime};
use simkernel::{Errno, Fd, FileKind, Kernel, Pid, PollBits};

use crate::interest::InterestTable;
#[cfg(feature = "simcheck")]
use crate::lockdep::{LockClass, LockGraph};
use crate::pollfd::{DvPoll, PollFd};
use crate::stock::PollOutcome;

/// Feature switches of one `/dev/poll` instance (the paper's design
/// choices; flipping them off gives the ablation baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevPollConfig {
    /// §3.2: device-driver hints via backmapping lists. When off, every
    /// `DP_POLL` scan invokes the driver poll callback for every
    /// interest.
    pub hints: bool,
    /// Solaris OR-semantics for interest updates (default off: the
    /// events field *replaces* the previous interest, §3.1).
    pub or_semantics: bool,
    /// §3.2: per-socket backmap locks instead of one global rwlock
    /// (costs 8 bytes per socket, halves lock traffic cost here).
    pub per_socket_locks: bool,
}

impl Default for DevPollConfig {
    fn default() -> DevPollConfig {
        DevPollConfig {
            hints: true,
            or_semantics: false,
            per_socket_locks: false,
        }
    }
}

/// Diagnostic counters of one device instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct DevPollStats {
    /// `DP_POLL` scans executed.
    pub scans: u64,
    /// Driver poll callbacks actually invoked.
    pub driver_polls: u64,
    /// Driver poll callbacks skipped thanks to hints.
    pub driver_polls_avoided: u64,
    /// Hints marked by the (simulated) driver event path.
    pub hints_marked: u64,
    /// Results returned to the application.
    pub results: u64,
    /// Results delivered through the mmap area (no copy).
    pub mmap_results: u64,
}

/// One open `/dev/poll` instance.
#[derive(Debug, Clone)]
pub struct DevPollDevice {
    owner: Pid,
    config: DevPollConfig,
    interest: InterestTable,
    /// Result slots allocated via `ioctl(DP_ALLOC)` and mapped.
    mmap_slots: Option<usize>,
    stats: DevPollStats,
}

impl DevPollDevice {
    /// The interest set (for inspection and tests).
    pub fn interest(&self) -> &InterestTable {
        &self.interest
    }

    /// Counters.
    pub fn stats(&self) -> DevPollStats {
        self.stats
    }

    /// Whether a result mapping is active.
    pub fn has_mmap(&self) -> bool {
        self.mmap_slots.is_some()
    }

    /// Heap bytes held by this device's interest table.
    pub fn mem_bytes(&self) -> usize {
        self.interest.mem_bytes()
    }
}

/// All `/dev/poll` instances of a simulated machine.
///
/// "A process may open /dev/poll more than once to build multiple
/// independent interest sets" — each `open` yields a distinct device.
#[derive(Debug, Default, Clone)]
pub struct DevPollRegistry {
    /// Ordered by handle so multi-device walks ([`Self::on_fd_event`])
    /// are deterministic.
    devices: BTreeMap<u64, DevPollDevice>,
    next: u64,
    /// Hidden fault-injection hook: when set, `DP_POLL` serves
    /// cached-"ready" results *without* revalidating them — the §3.2 bug
    /// the simcheck differential oracle exists to catch. Test-only.
    #[doc(hidden)]
    testhook_skip_revalidation: bool,
    /// Hidden fault-injection hook: force Solaris OR-semantics on every
    /// interest update regardless of the device's configuration — the
    /// §3.1 replace-not-OR divergence. Test-only.
    #[doc(hidden)]
    testhook_or_semantics: bool,
    /// Hidden fault-injection hook: on `POLLREMOVE`, drop the interest
    /// from the table but *skip* the backmap/watcher purge — the §3.1
    /// dual-purge bug. Test-only.
    #[doc(hidden)]
    testhook_skip_backmap_purge: bool,
    /// Lock-order recorder (checked mode): every simulated rwlock /
    /// per-socket acquisition lands here so inverted orders are caught.
    #[cfg(feature = "simcheck")]
    lockdep: LockGraph,
    /// Scan scratch (reused across `dp_poll` calls; no per-scan allocation).
    scan_scratch: Vec<(Fd, PollBits)>,
    /// `write` scratch: fds to (un)watch this call.
    watch_scratch: Vec<Fd>,
    unwatch_scratch: Vec<Fd>,
}

impl DevPollRegistry {
    /// Creates an empty registry.
    pub fn new() -> DevPollRegistry {
        DevPollRegistry::default()
    }

    /// `open("/dev/poll")`: creates an instance and a descriptor for it.
    pub fn open(
        &mut self,
        kernel: &mut Kernel,
        _now: SimTime,
        pid: Pid,
        config: DevPollConfig,
    ) -> Result<Fd, Errno> {
        let cost = *kernel.cost_model();
        kernel.charge_app(pid, cost.syscall);
        let handle = self.next;
        self.next += 1;
        // Allocate the fd first so a full table does not leak a device.
        let fd = kernel_alloc_devpoll_fd(kernel, pid, handle)?;
        self.devices.insert(
            handle,
            DevPollDevice {
                owner: pid,
                config,
                interest: InterestTable::new(),
                mmap_slots: None,
                stats: DevPollStats::default(),
            },
        );
        Ok(fd)
    }

    /// Fault injection for the simcheck differential oracle: serve
    /// cached-"ready" results stale, skipping the mandatory
    /// revalidation. Never enable outside a test.
    #[doc(hidden)]
    pub fn testhook_skip_revalidation(&mut self, on: bool) {
        self.testhook_skip_revalidation = on;
    }

    /// Fault injection for `simcheck explore`: apply every interest
    /// update with Solaris OR-semantics instead of replace. Never
    /// enable outside a test.
    #[doc(hidden)]
    pub fn testhook_or_semantics(&mut self, on: bool) {
        self.testhook_or_semantics = on;
    }

    /// Fault injection for `simcheck explore`: `POLLREMOVE` removes the
    /// interest-table entry but leaves the watcher/backmap registration
    /// behind. Never enable outside a test.
    #[doc(hidden)]
    pub fn testhook_skip_backmap_purge(&mut self, on: bool) {
        self.testhook_skip_backmap_purge = on;
    }

    /// Folds every device's kernel-side state — interest entries with
    /// their hint flags and cached results, mmap allocation, config —
    /// into one FNV digest for world deduplication in `simcheck
    /// explore`. Diagnostic counters are excluded.
    pub fn state_fingerprint(&self) -> u64 {
        use simcore::fingerprint::Fnv;
        let mut h = Fnv::new();
        h.write_u64(self.next);
        h.write_bool(self.testhook_skip_revalidation);
        h.write_bool(self.testhook_or_semantics);
        h.write_bool(self.testhook_skip_backmap_purge);
        h.write_len(self.devices.len());
        for (handle, dev) in &self.devices {
            h.write_u64(*handle);
            h.write_u64(u64::from(dev.owner));
            h.write_bool(dev.config.hints);
            h.write_bool(dev.config.or_semantics);
            h.write_bool(dev.config.per_socket_locks);
            h.write_u64(dev.mmap_slots.map_or(u64::MAX, |s| s as u64));
            h.write_len(dev.interest.len());
            for e in dev.interest.iter() {
                h.write_i64(i64::from(e.fd));
                h.write_u32(u32::from(e.events.0));
                h.write_bool(e.hinted);
                h.write_u32(u32::from(e.cached.0));
            }
        }
        h.finish()
    }

    /// Heap bytes held by every device's interest table plus the
    /// registry's reusable scratch buffers — the `/dev/poll` share of
    /// the per-connection memory lane.
    pub fn mem_bytes(&self) -> usize {
        let scratch = (self.scan_scratch.capacity() * std::mem::size_of::<(Fd, PollBits)>())
            + (self.watch_scratch.capacity() + self.unwatch_scratch.capacity())
                * std::mem::size_of::<Fd>();
        self.devices
            .values()
            .map(DevPollDevice::mem_bytes)
            .sum::<usize>()
            + scratch
    }

    /// The lock-order graph recorded so far (checked mode).
    #[cfg(feature = "simcheck")]
    pub fn lockdep(&self) -> &LockGraph {
        &self.lockdep
    }

    /// The device handle behind a descriptor (no ownership check).
    fn handle_of(kernel: &Kernel, pid: Pid, dpfd: Fd) -> Result<u64, Errno> {
        match kernel.process(pid).fds.get(dpfd)?.kind {
            FileKind::DevPoll(h) => Ok(h),
            _ => Err(Errno::EINVAL),
        }
    }

    fn resolve(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        dpfd: Fd,
    ) -> Result<&mut DevPollDevice, Errno> {
        let handle = Self::handle_of(kernel, pid, dpfd)?;
        let dev = self.devices.get_mut(&handle).ok_or(Errno::EBADF)?;
        if dev.owner != pid {
            return Err(Errno::EBADF);
        }
        Ok(dev)
    }

    /// Read-only device lookup (tests, benches).
    pub fn device(&self, kernel: &Kernel, pid: Pid, dpfd: Fd) -> Result<&DevPollDevice, Errno> {
        let handle = match kernel.process(pid).fds.get(dpfd)?.kind {
            FileKind::DevPoll(h) => h,
            _ => return Err(Errno::EINVAL),
        };
        self.devices.get(&handle).ok_or(Errno::EBADF)
    }

    /// `write(dpfd, pollfds)`: adds, modifies and removes interests
    /// (§3.1). `POLLREMOVE` in `events` removes; otherwise the entry
    /// replaces (or ORs into, in Solaris mode) the existing interest.
    ///
    /// Returns the number of entries processed.
    pub fn write(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        pid: Pid,
        dpfd: Fd,
        entries: &[PollFd],
    ) -> Result<usize, Errno> {
        self.write_inner(kernel, now, pid, dpfd, entries, true)
    }

    fn write_inner(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        pid: Pid,
        dpfd: Fd,
        entries: &[PollFd],
        charge_syscall: bool,
    ) -> Result<usize, Errno> {
        let cost = *kernel.cost_model();
        let spans_on = kernel.spans().enabled();
        let t_call = kernel.batch_acc(pid);
        if charge_syscall {
            kernel.charge_app(pid, cost.syscall);
        }
        kernel.charge_app(
            pid,
            cost.copy_per_byte * (entries.len() * PollFd::BYTES) as u64,
        );
        // Interest-set modification takes the backmap write lock.
        let t_backmap = kernel.batch_acc(pid);
        kernel.charge_app(pid, cost.backmap_wlock);
        let t_table = kernel.batch_acc(pid);
        #[cfg(feature = "simcheck")]
        {
            self.lockdep.acquire(LockClass::Backmap);
            self.lockdep.acquire(LockClass::InterestTable);
        }

        let mut to_watch = std::mem::take(&mut self.watch_scratch);
        to_watch.clear();
        let mut to_unwatch = std::mem::take(&mut self.unwatch_scratch);
        to_unwatch.clear();
        let skip_purge = self.testhook_skip_backmap_purge;
        let force_or = self.testhook_or_semantics;
        let dev = self.resolve(kernel, pid, dpfd)?;
        let or_semantics = dev.config.or_semantics || force_or;
        #[cfg(feature = "simcheck")]
        let prev_buckets = dev.interest.bucket_count();
        let grows_before = dev.interest.grow_count();
        for e in entries {
            if e.events.contains(PollBits::POLLREMOVE) {
                // Under the fault hook the watcher purge is skipped, so
                // the fd never lands in `to_unwatch` (which also keeps
                // the runtime auditor blind to the seeded bug —
                // `explore` must find it from the outside).
                if dev.interest.remove(e.fd) && !skip_purge {
                    to_unwatch.push(e.fd);
                }
            } else {
                dev.interest.set(e.fd, e.events, or_semantics);
                to_watch.push(e.fd);
            }
        }
        let grows = dev.interest.grow_count() - grows_before;
        let (len, buckets, max_bucket) = (
            dev.interest.len() as u64,
            dev.interest.bucket_count() as u64,
            dev.interest.max_bucket_len() as u64,
        );
        kernel.charge_app(pid, cost.devpoll_hash_op * entries.len() as u64);
        let probe = kernel.probe_mut();
        probe.add("devpoll.interest.ops", entries.len() as u64);
        probe.add("devpoll.interest.lookups", entries.len() as u64);
        probe.add("devpoll.interest.resizes", u64::from(grows));
        probe.gauge_set("devpoll.interest.len", len);
        probe.gauge_set("devpoll.interest.buckets", buckets);
        probe.gauge_set("devpoll.interest.max_bucket", max_bucket);
        if kernel.trace().wants("devpoll") {
            let (adds, removes) = (to_watch.len(), to_unwatch.len());
            kernel.trace_mut().record(
                now,
                "devpoll",
                format!("write: +{adds} -{removes} (len {len}, {buckets} buckets)"),
            );
        }
        #[cfg(feature = "simcheck")]
        {
            self.lockdep.release(LockClass::InterestTable);
            self.lockdep.release(LockClass::Backmap);
        }
        if spans_on {
            // Hold spans for the locked region above (charges between the
            // acquisition snapshots and here), Backmap enclosing
            // InterestTable just as lockdep records them.
            kernel.span_hold(pid, Phase::LockInterestTable, t_table);
            kernel.span_hold(pid, Phase::LockBackmap, t_backmap);
        }
        for &fd in &to_watch {
            kernel.watch(pid, fd);
        }
        for &fd in &to_unwatch {
            kernel.unwatch(pid, fd);
        }
        #[cfg(feature = "simcheck")]
        {
            let dev = self.resolve(kernel, pid, dpfd)?;
            let checks = crate::audit::check_write(
                kernel,
                pid,
                dev,
                entries,
                &to_unwatch,
                or_semantics,
                prev_buckets,
            );
            kernel.probe_mut().add("audit.checks", checks);
        }
        self.watch_scratch = to_watch;
        self.unwatch_scratch = to_unwatch;
        if spans_on {
            // The whole interest update — copy-in, table edit, watcher
            // (de)registration — is interest-registration work.
            kernel.span_leaf(pid, Phase::InterestReg, t_call);
        }
        Ok(entries.len())
    }

    /// The combined update+poll operation proposed in §6: interest
    /// updates applied as part of the subsequent `DP_POLL` ioctl, saving
    /// the separate `write()` syscall's entry/exit overhead.
    pub fn write_combined(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        pid: Pid,
        dpfd: Fd,
        entries: &[PollFd],
    ) -> Result<usize, Errno> {
        // Identical to `write` except the updates ride on the following
        // ioctl's syscall, so no separate entry/exit is charged.
        self.write_inner(kernel, now, pid, dpfd, entries, false)
    }

    /// `ioctl(dpfd, DP_ALLOC, n)` followed by `mmap()`: allocates and
    /// maps a shared result area of `n` slots (§3.3).
    pub fn dp_alloc_mmap(
        &mut self,
        kernel: &mut Kernel,
        _now: SimTime,
        pid: Pid,
        dpfd: Fd,
        slots: usize,
    ) -> Result<(), Errno> {
        let cost = *kernel.cost_model();
        // DP_ALLOC ioctl + the mmap call.
        kernel.charge_app(pid, cost.syscall * 2);
        if slots == 0 {
            return Err(Errno::EINVAL);
        }
        let dev = self.resolve(kernel, pid, dpfd)?;
        dev.mmap_slots = Some(slots);
        Ok(())
    }

    /// `munmap()`: tears the result mapping down.
    pub fn munmap(
        &mut self,
        kernel: &mut Kernel,
        _now: SimTime,
        pid: Pid,
        dpfd: Fd,
    ) -> Result<(), Errno> {
        let cost = *kernel.cost_model();
        kernel.charge_app(pid, cost.syscall);
        let dev = self.resolve(kernel, pid, dpfd)?;
        dev.mmap_slots = None;
        Ok(())
    }

    /// `ioctl(dpfd, DP_POLL, dvpoll)`: scans the interest set (§3.1-3.3).
    ///
    /// With hints enabled only descriptors whose status may have changed
    /// — hinted ones, plus cached-ready ones which "\[have\] to be
    /// reevaluated each time" — pay a driver poll callback. Results are
    /// written to the mmap area when `dvpoll.null_dp_fds` is set.
    // #[hot_path] — simcheck bans per-call allocation in this function
    pub fn dp_poll(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        pid: Pid,
        dpfd: Fd,
        args: DvPoll,
    ) -> Result<(PollOutcome, Vec<PollFd>), Errno> {
        let cost = *kernel.cost_model();
        let spans_on = kernel.spans().enabled();
        let t_scan = kernel.batch_acc(pid);
        kernel.charge_app(pid, cost.syscall + cost.devpoll_base);
        if args.null_dp_fds && self.device(kernel, pid, dpfd)?.mmap_slots.is_none() {
            return Err(Errno::EINVAL);
        }
        let skip_reval = self.testhook_skip_revalidation;
        // The scan holds the backmap read lock, consults the interest
        // table and invokes driver (socket) poll callbacks — in that
        // order, which the checked mode's lockdep graph records.
        #[cfg(feature = "simcheck")]
        {
            self.lockdep.acquire(LockClass::Backmap);
            self.lockdep.acquire(LockClass::InterestTable);
            self.lockdep.acquire(LockClass::Socket);
            self.lockdep.release(LockClass::Socket);
            self.lockdep.release(LockClass::InterestTable);
            self.lockdep.release(LockClass::Backmap);
        }

        // Gather readiness into the reused scan scratch buffer — the
        // kernel is the "driver" here, a disjoint borrow, so the device
        // stays resolved across the whole scan (no per-descriptor
        // re-resolution, no per-scan candidate allocation).
        let handle = Self::handle_of(kernel, pid, dpfd)?;
        self.resolve(kernel, pid, dpfd)?;
        let mut candidates = std::mem::take(&mut self.scan_scratch);
        candidates.clear();
        let mut results: Vec<PollFd> = Vec::new();
        let dev = self
            .devices
            .get_mut(&handle)
            .expect("invariant: resolved above");
        let hints = dev.config.hints;
        let per_socket_locks = dev.config.per_socket_locks;
        // Cached-ready entries with no fresh hint re-enter the scan only
        // to be revalidated ("[they have] to be reevaluated each time").
        let mut revalidated: u64 = 0;
        if hints {
            // Incremental scan: the table's dirty list holds exactly the
            // entries with a pending hint or a cached ready result, so
            // descriptors whose state is unchanged since the last scan
            // are never visited. (The *modelled* hint walk still covers
            // the whole set — see the `hint_walk` charge below.)
            for e in dev.interest.dirty_iter() {
                if e.hinted {
                    candidates.push((e.fd, e.events));
                } else if !skip_reval {
                    candidates.push((e.fd, e.events));
                    revalidated += 1;
                } else {
                    // Under the fault-injection hook, cached-ready
                    // entries bypass the scan and their stale cached
                    // result is served as-is.
                    results.push(PollFd {
                        fd: e.fd,
                        events: e.events,
                        revents: e.cached,
                    });
                }
            }
        } else {
            for e in dev.interest.iter() {
                candidates.push((e.fd, e.events));
            }
        }
        #[cfg(feature = "simcheck")]
        if hints && !skip_reval {
            let checks = crate::audit::check_scan_candidates(dev, &candidates);
            kernel.probe_mut().add("audit.checks", checks);
        }
        let polled = candidates.len();
        let avoided = dev.interest.len() - polled;
        let total = dev.interest.len();
        dev.stats.scans += 1;
        dev.stats.driver_polls += polled as u64;
        dev.stats.driver_polls_avoided += avoided as u64;
        let probe = kernel.probe_mut();
        probe.inc("devpoll.scans");
        probe.add("devpoll.driver_polls", polled as u64);
        probe.add("devpoll.driver_polls_avoided", avoided as u64);
        probe.add("devpoll.cache_revalidations", revalidated);
        probe.add("devpoll.interest.lookups", polled as u64);

        // Charge the scan: hint-flag walk per candidate plus one driver
        // poll callback each; a read-lock acquisition covers the
        // backmap consultation. Without hints the entire set pays the
        // driver callback (and no hint machinery exists to walk).
        let lock_cost = if per_socket_locks {
            cost.backmap_rlock / 2
        } else {
            cost.backmap_rlock
        };
        let t_backmap = kernel.batch_acc(pid);
        if hints {
            kernel.charge_app(pid, lock_cost);
            kernel.charge_app(pid, cost.hint_walk * total as u64);
        }
        let t_socket = kernel.batch_acc(pid);
        kernel.charge_app(pid, cost.driver_poll * candidates.len() as u64);

        for &(fd, events) in &candidates {
            let state = kernel.readiness(pid, fd);
            let revents = state & (events | PollBits::always_reported());
            dev.interest.set_scan_result(fd, revents);
            if !revents.is_empty() {
                results.push(PollFd {
                    fd,
                    events,
                    revents,
                });
            }
        }
        if spans_on {
            // Lock holds over the scan, in lockdep order: the socket
            // locks cover the driver callbacks, the backmap read lock
            // (and interest table under it) covers hint walk + scan.
            kernel.span_hold(pid, Phase::LockSocket, t_socket);
            if hints {
                kernel.span_hold(pid, Phase::LockInterestTable, t_backmap);
                kernel.span_hold(pid, Phase::LockBackmap, t_backmap);
            }
            // Readiness scan: everything from DP_POLL entry through the
            // driver polls, hint machinery included.
            kernel.span_leaf(pid, Phase::ReadyScan, t_scan);
        }
        // Results are reported in ascending fd order regardless of the
        // (modelled) hash table's internal layout — determinism the
        // simcheck differential oracle (and any consumer diffing runs)
        // relies on.
        results.sort_by_key(|r| r.fd);
        #[cfg(feature = "simcheck")]
        if !skip_reval {
            let dev = self
                .devices
                .get(&handle)
                .expect("invariant: resolved above");
            let checks = crate::audit::check_scan_results(kernel, pid, dev, &candidates, &results);
            kernel.probe_mut().add("audit.checks", checks);
        }

        let dev = self
            .devices
            .get_mut(&handle)
            .expect("invariant: resolved above");
        let cap = match (args.null_dp_fds, dev.mmap_slots) {
            (true, Some(slots)) => args.dp_nfds.min(slots),
            _ => args.dp_nfds,
        };
        results.truncate(cap);
        dev.stats.results += results.len() as u64;
        let result_bytes = (results.len() * PollFd::BYTES) as u64;
        let t_out = kernel.batch_acc(pid);
        if args.null_dp_fds {
            dev.stats.mmap_results += results.len() as u64;
            kernel.charge_app(pid, cost.mmap_result_write * results.len() as u64);
            kernel
                .probe_mut()
                .add("devpoll.mmap_result_bytes", result_bytes);
        } else {
            kernel.charge_app(
                pid,
                (cost.pollfd_copyout + cost.copy_per_byte * PollFd::BYTES as u64)
                    * results.len() as u64,
            );
            kernel
                .probe_mut()
                .add("devpoll.copyout_bytes", result_bytes);
        }
        if spans_on {
            // Event delivery: mmap result write or pollfd copy-out.
            kernel.span_leaf(pid, Phase::Delivery, t_out);
        }
        kernel
            .probe_mut()
            .add("devpoll.results", results.len() as u64);
        if kernel.trace().wants("devpoll") {
            let ready = results.len();
            kernel.trace_mut().record(
                now,
                "devpoll",
                format!(
                    "DP_POLL: {total} interests, {polled} polled, {avoided} skipped, \
                     {revalidated} revalidated, {ready} ready"
                ),
            );
        }

        candidates.clear();
        self.scan_scratch = candidates;
        if !results.is_empty() {
            return Ok((PollOutcome::Ready(results.len()), results));
        }
        if args.dp_timeout == 0 {
            return Ok((PollOutcome::Ready(0), results));
        }
        // Watchers were registered when interests were written; sleeping
        // costs no per-descriptor wait-queue traffic — the key §3.1 win.
        Ok((PollOutcome::WouldBlock, results))
    }

    /// Routes a descriptor event into every interested device: the
    /// driver marking its backmap hint (§3.2). Runs in softirq context,
    /// so the cost is charged to the CPU as interrupt work.
    // #[hot_path] — simcheck bans per-call allocation in this function
    pub fn on_fd_event(&mut self, kernel: &mut Kernel, now: SimTime, pid: Pid, fd: Fd) {
        let cost = *kernel.cost_model();
        let spans_on = kernel.spans().enabled();
        // The driver's hint path takes the backmap read lock, then
        // touches the interest table — the same order as the scan path,
        // so the lockdep graph stays acyclic.
        #[cfg(feature = "simcheck")]
        {
            self.lockdep.acquire(LockClass::Backmap);
            self.lockdep.acquire(LockClass::InterestTable);
            self.lockdep.release(LockClass::InterestTable);
            self.lockdep.release(LockClass::Backmap);
        }
        for dev in self.devices.values_mut() {
            if dev.owner != pid {
                continue;
            }
            if !dev.config.hints {
                continue;
            }
            if dev.interest.mark_hint(fd) {
                dev.stats.hints_marked += 1;
                kernel.probe_mut().inc("devpoll.hints_marked");
                let lock = if dev.config.per_socket_locks {
                    cost.backmap_rlock / 2
                } else {
                    cost.backmap_rlock
                };
                let held = SimDuration::from_nanos(cost.backmap_mark + lock);
                kernel.charge_softirq(now, held);
                if spans_on {
                    // Driver-side hint mark holds the backmap lock in
                    // softirq context (tid 0 — no process is running).
                    kernel.span_complete(Phase::LockBackmap, 0, now, now + held);
                }
            }
        }
    }

    /// `close(dpfd)`: releases the device, its interest set and its
    /// watcher registrations.
    pub fn close(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        pid: Pid,
        dpfd: Fd,
    ) -> Result<(), Errno> {
        let handle = match kernel.process(pid).fds.get(dpfd)?.kind {
            FileKind::DevPoll(h) => h,
            _ => return Err(Errno::EINVAL),
        };
        let dev = self.devices.remove(&handle).ok_or(Errno::EBADF)?;
        for e in dev.interest.iter() {
            kernel.unwatch(pid, e.fd);
        }
        let cost = *kernel.cost_model();
        kernel.charge_app(pid, cost.syscall + cost.close);
        kernel_close_fd(kernel, pid, dpfd)?;
        let _ = now;
        Ok(())
    }
}

/// Allocates a descriptor of kind `DevPoll` — helper keeping the fd-table
/// poke in one place.
fn kernel_alloc_devpoll_fd(kernel: &mut Kernel, pid: Pid, handle: u64) -> Result<Fd, Errno> {
    kernel.alloc_fd(pid, FileKind::DevPoll(handle))
}

/// Closes a descriptor without network side effects.
fn kernel_close_fd(kernel: &mut Kernel, pid: Pid, fd: Fd) -> Result<(), Errno> {
    kernel.close_fd_raw(pid, fd)
}
