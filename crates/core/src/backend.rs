//! A uniform event-backend interface so the same server (`thttpd` in the
//! `servers` crate) can run on stock `poll()` or on `/dev/poll`, exactly
//! like the paper's stock vs. modified thttpd pair (§5.1).

use simcore::fingerprint::Fnv;
use simcore::time::SimTime;
use simkernel::{Errno, Fd, Kernel, Pid, PollBits};

use crate::device::{DevPollConfig, DevPollRegistry};
use crate::pollfd::{DvPoll, PollFd};
use crate::select::{sys_select, FdSet, FD_SETSIZE};
use crate::stock::{sys_poll, PollOutcome};

/// Result of waiting for events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitResult {
    /// Ready descriptors (possibly empty for a zero timeout).
    Events(Vec<PollFd>),
    /// Nothing ready; the process should sleep and retry on wakeup.
    WouldBlock,
}

/// An event-notification backend.
pub trait EventBackend {
    /// Human-readable name for reports ("poll", "devpoll", …).
    fn name(&self) -> &'static str;

    /// One-time setup (e.g. opening `/dev/poll`).
    fn init(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
    ) -> Result<(), Errno>;

    /// Declares interest in `events` on `fd` (add or modify).
    fn set_interest(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        fd: Fd,
        events: PollBits,
    ) -> Result<(), Errno>;

    /// Drops interest in `fd`.
    fn remove_interest(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        fd: Fd,
    ) -> Result<(), Errno>;

    /// Collects ready descriptors, up to `max`.
    fn wait(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        max: usize,
        timeout_ms: i32,
    ) -> Result<WaitResult, Errno>;

    /// Current interest-set size (diagnostics).
    fn interest_len(&self) -> usize;

    /// Clones this backend into a fresh box. World snapshotting in
    /// `simcheck explore` forks whole lanes, and the backend's
    /// user-space bookkeeping (interest arrays, pending updates, dpfd)
    /// is part of the world.
    fn clone_box(&self) -> Box<dyn EventBackend>;

    /// Folds the backend's user-space state into `h` — the portion of
    /// the world that lives outside the kernel and the `/dev/poll`
    /// registry. Fields must be fed in a fixed order (see
    /// `simcore::fingerprint`).
    fn fingerprint_into(&self, h: &mut Fnv);
}

impl Clone for Box<dyn EventBackend> {
    fn clone(&self) -> Box<dyn EventBackend> {
        self.clone_box()
    }
}

/// Folds a dense fd-indexed interest array (the user-space bookkeeping
/// shared by the poll and select backends) in ascending-fd order.
fn fingerprint_interest(h: &mut Fnv, interest: &[Option<PollBits>]) {
    h.write_len(interest.iter().filter(|s| s.is_some()).count());
    for (ix, ev) in interest.iter().enumerate() {
        if let Some(ev) = ev {
            h.write_usize(ix);
            h.write_u32(u32::from(ev.0));
        }
    }
}

/// Stock `poll()`: the interest set lives in user space and the whole
/// array crosses into the kernel on every call.
///
/// Interest is stored densely, indexed by fd, so the rebuilt pollfd
/// array — and therefore every result — is deterministic (ascending fd)
/// without a per-call sort, and the rebuild reuses one scratch buffer
/// instead of allocating per wait.
#[derive(Debug, Default, Clone)]
pub struct StockPollBackend {
    interest: Vec<Option<PollBits>>,
    len: usize,
    scratch: Vec<PollFd>,
}

impl StockPollBackend {
    /// Creates an empty backend.
    pub fn new() -> StockPollBackend {
        StockPollBackend::default()
    }
}

impl EventBackend for StockPollBackend {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn init(
        &mut self,
        _kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        _now: SimTime,
        _pid: Pid,
    ) -> Result<(), Errno> {
        Ok(())
    }

    fn set_interest(
        &mut self,
        _kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        _now: SimTime,
        _pid: Pid,
        fd: Fd,
        events: PollBits,
    ) -> Result<(), Errno> {
        // Pure user-space bookkeeping: free.
        let ix = usize::try_from(fd).map_err(|_| Errno::EINVAL)?;
        if ix >= self.interest.len() {
            self.interest.resize(ix + 1, None);
        }
        if self.interest[ix].replace(events).is_none() {
            self.len += 1;
        }
        Ok(())
    }

    fn remove_interest(
        &mut self,
        _kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        _now: SimTime,
        _pid: Pid,
        fd: Fd,
    ) -> Result<(), Errno> {
        if let Some(slot) = usize::try_from(fd)
            .ok()
            .and_then(|ix| self.interest.get_mut(ix))
        {
            if slot.take().is_some() {
                self.len -= 1;
            }
        }
        Ok(())
    }

    fn wait(
        &mut self,
        kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        max: usize,
        timeout_ms: i32,
    ) -> Result<WaitResult, Errno> {
        // The application rebuilds its pollfd array each call (§6: "
        // Applications of this type often entirely rebuild their pollfd
        // array each time they invoke poll()") — into a reused scratch
        // buffer, in ascending fd order, so the array is deterministic.
        let mut fds = std::mem::take(&mut self.scratch);
        fds.clear();
        for (ix, ev) in self.interest.iter().enumerate() {
            if let Some(&ev) = ev.as_ref() {
                fds.push(PollFd::new(ix as Fd, ev));
            }
        }
        let outcome = sys_poll(kernel, now, pid, &mut fds, timeout_ms);
        let result = match outcome {
            PollOutcome::WouldBlock => WaitResult::WouldBlock,
            PollOutcome::Ready(_) => {
                let mut out: Vec<PollFd> = Vec::new();
                for f in &fds {
                    if !f.revents.is_empty() && out.len() < max {
                        out.push(*f);
                    }
                }
                WaitResult::Events(out)
            }
        };
        self.scratch = fds;
        Ok(result)
    }

    fn interest_len(&self) -> usize {
        self.len
    }

    fn clone_box(&self) -> Box<dyn EventBackend> {
        Box::new(self.clone())
    }

    fn fingerprint_into(&self, h: &mut Fnv) {
        fingerprint_interest(h, &self.interest);
    }
}

/// `select()`: the pre-poll baseline. Interest crosses the boundary as
/// three bitmaps; the kernel walks every slot up to `maxfd`; the result
/// overwrites the input, so both sets are rebuilt before every call; and
/// nothing past [`FD_SETSIZE`] can be watched at all.
#[derive(Debug, Default, Clone)]
pub struct SelectBackend {
    interest: Vec<Option<PollBits>>,
    len: usize,
}

impl SelectBackend {
    /// Creates an empty backend.
    pub fn new() -> SelectBackend {
        SelectBackend::default()
    }

    fn interest_of(&self, fd: Fd) -> PollBits {
        usize::try_from(fd)
            .ok()
            .and_then(|ix| self.interest.get(ix).copied().flatten())
            .unwrap_or(PollBits::EMPTY)
    }
}

impl EventBackend for SelectBackend {
    fn name(&self) -> &'static str {
        "select"
    }

    fn init(
        &mut self,
        _kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        _now: SimTime,
        _pid: Pid,
    ) -> Result<(), Errno> {
        Ok(())
    }

    fn set_interest(
        &mut self,
        _kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        _now: SimTime,
        _pid: Pid,
        fd: Fd,
        events: PollBits,
    ) -> Result<(), Errno> {
        if fd < 0 || fd as usize >= FD_SETSIZE {
            return Err(Errno::EINVAL); // Beyond the bitmap: unwatchable.
        }
        let ix = fd as usize;
        if ix >= self.interest.len() {
            self.interest.resize(ix + 1, None);
        }
        if self.interest[ix].replace(events).is_none() {
            self.len += 1;
        }
        Ok(())
    }

    fn remove_interest(
        &mut self,
        _kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        _now: SimTime,
        _pid: Pid,
        fd: Fd,
    ) -> Result<(), Errno> {
        if let Some(slot) = usize::try_from(fd)
            .ok()
            .and_then(|ix| self.interest.get_mut(ix))
        {
            if slot.take().is_some() {
                self.len -= 1;
            }
        }
        Ok(())
    }

    fn wait(
        &mut self,
        kernel: &mut Kernel,
        _registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        max: usize,
        timeout_ms: i32,
    ) -> Result<WaitResult, Errno> {
        // Rebuild both bitmaps — select's API overwrote last call's.
        let mut read_set = FdSet::new();
        let mut write_set = FdSet::new();
        for (ix, ev) in self.interest.iter().enumerate() {
            let Some(ev) = ev else { continue };
            if ev.intersects(PollBits::POLLIN) {
                read_set.set(ix as Fd);
            }
            if ev.intersects(PollBits::POLLOUT) {
                write_set.set(ix as Fd);
            }
        }
        match sys_select(kernel, now, pid, &mut read_set, &mut write_set, timeout_ms) {
            PollOutcome::WouldBlock => Ok(WaitResult::WouldBlock),
            PollOutcome::Ready(_) => {
                let mut out = Vec::new();
                for fd in read_set.iter() {
                    let mut revents = PollBits::POLLIN;
                    if write_set.is_set(fd) {
                        revents |= PollBits::POLLOUT;
                    }
                    out.push(PollFd {
                        fd,
                        events: self.interest_of(fd),
                        revents,
                    });
                }
                for fd in write_set.iter() {
                    if !read_set.is_set(fd) {
                        out.push(PollFd {
                            fd,
                            events: self.interest_of(fd),
                            revents: PollBits::POLLOUT,
                        });
                    }
                }
                out.sort_by_key(|p| p.fd); // Read-then-write walk order.
                out.truncate(max);
                Ok(WaitResult::Events(out))
            }
        }
    }

    fn interest_len(&self) -> usize {
        self.len
    }

    fn clone_box(&self) -> Box<dyn EventBackend> {
        Box::new(self.clone())
    }

    fn fingerprint_into(&self, h: &mut Fnv) {
        fingerprint_interest(h, &self.interest);
    }
}

/// `/dev/poll`: the interest set lives in the kernel; updates are
/// incremental writes and waiting is `ioctl(DP_POLL)`.
#[derive(Debug, Clone)]
pub struct DevPollBackend {
    config: DevPollConfig,
    /// Use the shared mmap result area (§3.3).
    use_mmap: bool,
    /// Result-area slots to allocate when mmap is on.
    mmap_slots: usize,
    /// Buffer interest updates in user space and apply them inside the
    /// next wait using the combined write+ioctl operation (§6 future
    /// work).
    combined_updates: bool,
    pending: Vec<PollFd>,
    dpfd: Option<Fd>,
    len: usize,
}

impl DevPollBackend {
    /// A backend with the paper's full feature set (hints + mmap).
    pub fn new() -> DevPollBackend {
        DevPollBackend::with_config(DevPollConfig::default(), true, 512, false)
    }

    /// Full control over the feature switches (for ablations).
    pub fn with_config(
        config: DevPollConfig,
        use_mmap: bool,
        mmap_slots: usize,
        combined_updates: bool,
    ) -> DevPollBackend {
        DevPollBackend {
            config,
            use_mmap,
            mmap_slots,
            combined_updates,
            pending: Vec::new(),
            dpfd: None,
            len: 0,
        }
    }

    fn dpfd(&self) -> Result<Fd, Errno> {
        self.dpfd.ok_or(Errno::EBADF)
    }
}

impl Default for DevPollBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBackend for DevPollBackend {
    fn name(&self) -> &'static str {
        // Encode the ablation switches so server names distinguish
        // configurations in logs and reports.
        match (self.config.hints, self.use_mmap, self.combined_updates) {
            (true, true, false) => "devpoll",
            (false, true, false) => "devpoll-nohints",
            (true, false, false) => "devpoll-nommap",
            (true, true, true) => "devpoll-combined",
            (false, false, false) => "devpoll-nohints-nommap",
            _ => "devpoll-custom",
        }
    }

    fn init(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
    ) -> Result<(), Errno> {
        let dpfd = registry.open(kernel, now, pid, self.config)?;
        if self.use_mmap {
            registry.dp_alloc_mmap(kernel, now, pid, dpfd, self.mmap_slots)?;
        }
        self.dpfd = Some(dpfd);
        Ok(())
    }

    fn set_interest(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        fd: Fd,
        events: PollBits,
    ) -> Result<(), Errno> {
        let dpfd = self.dpfd()?;
        self.len += 1; // Adjusted below if it was an update.
        if self.combined_updates {
            self.pending.push(PollFd::new(fd, events));
            return Ok(());
        }
        let before = registry.device(kernel, pid, dpfd)?.interest().len();
        registry.write(kernel, now, pid, dpfd, &[PollFd::new(fd, events)])?;
        let after = registry.device(kernel, pid, dpfd)?.interest().len();
        self.len = after.max(before);
        Ok(())
    }

    fn remove_interest(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        fd: Fd,
    ) -> Result<(), Errno> {
        let dpfd = self.dpfd()?;
        if self.combined_updates {
            self.pending.push(PollFd::remove(fd));
            return Ok(());
        }
        registry.write(kernel, now, pid, dpfd, &[PollFd::remove(fd)])?;
        self.len = registry.device(kernel, pid, dpfd)?.interest().len();
        Ok(())
    }

    fn wait(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut DevPollRegistry,
        now: SimTime,
        pid: Pid,
        max: usize,
        timeout_ms: i32,
    ) -> Result<WaitResult, Errno> {
        let dpfd = self.dpfd()?;
        if self.combined_updates && !self.pending.is_empty() {
            let updates = std::mem::take(&mut self.pending);
            registry.write_combined(kernel, now, pid, dpfd, &updates)?;
        }
        let args = if self.use_mmap {
            DvPoll::into_mmap(max, timeout_ms)
        } else {
            DvPoll::into_user_buffer(max, timeout_ms)
        };
        let (outcome, results) = registry.dp_poll(kernel, now, pid, dpfd, args)?;
        self.len = registry.device(kernel, pid, dpfd)?.interest().len();
        match outcome {
            PollOutcome::WouldBlock => Ok(WaitResult::WouldBlock),
            PollOutcome::Ready(_) => Ok(WaitResult::Events(results)),
        }
    }

    fn interest_len(&self) -> usize {
        self.len
    }

    fn clone_box(&self) -> Box<dyn EventBackend> {
        Box::new(self.clone())
    }

    fn fingerprint_into(&self, h: &mut Fnv) {
        // Kernel-side interest is covered by the registry fingerprint;
        // this is only the user-space residue.
        h.write_bool(self.config.hints);
        h.write_bool(self.config.or_semantics);
        h.write_bool(self.use_mmap);
        h.write_bool(self.combined_updates);
        h.write_len(self.pending.len());
        for p in &self.pending {
            h.write_i64(i64::from(p.fd));
            h.write_u32(u32::from(p.events.0));
        }
        match self.dpfd {
            None => h.write_u8(0),
            Some(fd) => {
                h.write_u8(1);
                h.write_i64(i64::from(fd));
            }
        }
    }
}
