//! The POSIX RT-signal event API (§2): the userspace conventions phhttpd
//! uses on top of `fcntl(F_SETSIG)` + `sigwaitinfo()`.
//!
//! The kernel-side queueing lives in `simkernel::signal`; this module
//! wraps it into an event API — registration, event pickup, overflow
//! detection — and implements the paper's proposed `sigtimedwait4()`
//! batch pickup (§6).

use simkernel::{Errno, Fd, Kernel, Pid, PollBits, SIGIO, SIGRTMAX, SIGRTMIN};

/// An event delivered through the RT signal queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtEvent {
    /// I/O readiness on a descriptor. The information equals a `pollfd`'s
    /// `fd`/`revents` pair (paper Fig. 2) — and like a `pollfd` it is
    /// only a *hint*: the connection may have changed state since.
    Io {
        /// The descriptor.
        fd: Fd,
        /// What happened (`_band`).
        band: PollBits,
    },
    /// SIGIO: the RT queue overflowed; events were lost. The application
    /// must flush the queue and recover via `poll()`.
    Overflow,
}

/// How signal numbers are assigned to descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalAssignment {
    /// Every descriptor uses one signal number (events dequeue strictly
    /// FIFO). This is what production servers do.
    Single(u8),
    /// Descriptors spread across the RT range (`SIGRTMIN + fd mod range`).
    /// Exposes the paper's ordering hazard: "activity on lower-numbered
    /// connections can cause longer delays for activity reports on
    /// higher-numbered connections".
    PerFd,
}

/// The RT-signal event interface of one process.
#[derive(Debug, Clone, Copy)]
pub struct RtSignalApi {
    assignment: SignalAssignment,
}

impl Default for RtSignalApi {
    fn default() -> Self {
        RtSignalApi::new(SignalAssignment::Single(SIGRTMIN))
    }
}

impl RtSignalApi {
    /// Creates the API with the given signal assignment policy.
    pub fn new(assignment: SignalAssignment) -> RtSignalApi {
        RtSignalApi { assignment }
    }

    /// The signal number used for `fd`.
    pub fn signo_for(&self, fd: Fd) -> u8 {
        match self.assignment {
            SignalAssignment::Single(s) => s,
            SignalAssignment::PerFd => {
                let range = (SIGRTMAX - SIGRTMIN) as i32 + 1;
                SIGRTMIN + (fd.rem_euclid(range)) as u8
            }
        }
    }

    /// Registers `fd` for signal-driven I/O:
    /// `fcntl(fd, F_SETSIG, signo)` + `F_SETOWN` + `O_NONBLOCK|O_ASYNC`.
    pub fn register(&self, kernel: &mut Kernel, pid: Pid, fd: Fd) -> Result<(), Errno> {
        kernel.sys_set_nonblock(pid, fd)?;
        kernel.sys_set_sig(pid, fd, Some(self.signo_for(fd)))
    }

    /// Stops signal delivery for `fd`.
    pub fn unregister(&self, kernel: &mut Kernel, pid: Pid, fd: Fd) -> Result<(), Errno> {
        kernel.sys_set_sig(pid, fd, None)
    }

    /// Picks up the next queued event (`sigwaitinfo`).
    ///
    /// Returns `EAGAIN` when the queue is empty (the caller blocks).
    pub fn next_event(&self, kernel: &mut Kernel, pid: Pid) -> Result<RtEvent, Errno> {
        let info = kernel.sys_sigwaitinfo(pid)?;
        if info.signo == SIGIO {
            return Ok(RtEvent::Overflow);
        }
        Ok(RtEvent::Io {
            fd: info.fd,
            band: info.band,
        })
    }

    /// Picks up up to `max` events in one syscall — the proposed
    /// `sigtimedwait4()` (§6).
    pub fn next_events(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        max: usize,
    ) -> Result<Vec<RtEvent>, Errno> {
        let infos = kernel.sys_sigtimedwait4(pid, max)?;
        Ok(infos
            .into_iter()
            .map(|info| {
                if info.signo == SIGIO {
                    RtEvent::Overflow
                } else {
                    RtEvent::Io {
                        fd: info.fd,
                        band: info.band,
                    }
                }
            })
            .collect())
    }

    /// Overflow recovery step 1: discard the (stale) queue contents, as
    /// an application does by resetting handlers to `SIG_DFL`. Returns
    /// the number of discarded events. Step 2 is a `poll()` over the
    /// connection set, which is the server's job.
    pub fn flush(&self, kernel: &mut Kernel, pid: Pid) -> usize {
        kernel.sys_flush_rt(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_assignment_uses_one_number() {
        let api = RtSignalApi::default();
        assert_eq!(api.signo_for(3), SIGRTMIN);
        assert_eq!(api.signo_for(999), SIGRTMIN);
    }

    #[test]
    fn per_fd_assignment_spreads_and_stays_in_range() {
        let api = RtSignalApi::new(SignalAssignment::PerFd);
        for fd in 0..200 {
            let s = api.signo_for(fd);
            assert!((SIGRTMIN..=SIGRTMAX).contains(&s));
        }
        assert_ne!(api.signo_for(0), api.signo_for(1));
    }
}
